package serving

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionBoundsAndShedsImmediately(t *testing.T) {
	a := NewAdmission(2, 0)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.InFlight() != 2 {
		t.Fatalf("InFlight = %d, want 2", a.InFlight())
	}
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated Acquire = %v, want ErrOverloaded", err)
	}
	r1()
	r3, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	r2()
	r3()
	r3() // double release must be a no-op
	if a.InFlight() != 0 {
		t.Fatalf("InFlight = %d after releases", a.InFlight())
	}
	m := a.Metrics()
	if m.Shed != 1 || m.Admitted != 3 || m.Capacity != 2 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestAdmissionQueueWaitSucceeds(t *testing.T) {
	a := NewAdmission(1, time.Second)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r, err := a.Acquire(context.Background()) // waits for the slot
		if err != nil {
			t.Errorf("queued Acquire = %v", err)
			return
		}
		r()
	}()
	time.Sleep(10 * time.Millisecond)
	release()
	wg.Wait()
	if shed := a.Metrics().Shed; shed != 0 {
		t.Fatalf("shed = %d, want 0", shed)
	}
}

func TestAdmissionQueueWaitExpires(t *testing.T) {
	a := NewAdmission(1, 15*time.Millisecond)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expired wait = %v, want ErrOverloaded", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("shed before the queue wait elapsed")
	}
}

func TestAdmissionContextCancelWhileQueued(t *testing.T) {
	a := NewAdmission(1, time.Minute)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := a.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Acquire = %v, want context.Canceled", err)
	}
	// A caller abandoning the queue is not a shed.
	if shed := a.Metrics().Shed; shed != 0 {
		t.Fatalf("shed = %d, want 0", shed)
	}
}

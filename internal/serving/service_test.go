package serving

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testConfig() Config {
	return Config{
		CacheCapacity: 32,
		CacheTTL:      time.Minute,
		MaxConcurrent: 4,
		QueueWait:     0,
		Timeout:       time.Second,
	}
}

func TestServiceCachesRepeatedQueries(t *testing.T) {
	var execs atomic.Int64
	svc := NewService(testConfig(), func(ctx context.Context, req Request) ([]string, error) {
		execs.Add(1)
		return []string{req.Query, "result"}, nil
	})
	req := Request{Strategy: "Relationships", Query: "asthma", K: 10}
	for i := 0; i < 5; i++ {
		v, err := svc.Search(context.Background(), req)
		if err != nil || len(v) != 2 {
			t.Fatalf("call %d: (%v, %v)", i, v, err)
		}
	}
	if execs.Load() != 1 {
		t.Fatalf("exec ran %d times, want 1 (cached)", execs.Load())
	}
	snap := svc.Stats().Snapshot()
	if snap.CacheHits != 4 || snap.CacheMiss != 1 || snap.Executions != 1 {
		t.Fatalf("stats = %+v", snap)
	}
	if m := svc.Metrics(); m.Cache.Entries != 1 {
		t.Fatalf("cache entries = %d", m.Cache.Entries)
	}
}

func TestServiceKeySeparatesRequests(t *testing.T) {
	var execs atomic.Int64
	svc := NewService(testConfig(), func(ctx context.Context, req Request) (string, error) {
		execs.Add(1)
		return req.Key(), nil
	})
	reqs := []Request{
		{Strategy: "Graph", Query: "asthma", K: 10},
		{Strategy: "Relationships", Query: "asthma", K: 10},
		{Strategy: "Graph", Query: "asthma", K: 20},
		{Strategy: "Graph", Query: "asthma", K: 10, Offset: 10},
	}
	for _, r := range reqs {
		if _, err := svc.Search(context.Background(), r); err != nil {
			t.Fatal(err)
		}
	}
	if execs.Load() != int64(len(reqs)) {
		t.Fatalf("exec ran %d times, want %d (distinct keys)", execs.Load(), len(reqs))
	}
}

// The acceptance path: concurrent identical queries execute the engine
// exactly once; everyone gets the same answer.
func TestServiceSingleflightUnderConcurrency(t *testing.T) {
	var execs atomic.Int64
	gate := make(chan struct{})
	svc := NewService(testConfig(), func(ctx context.Context, req Request) (int, error) {
		execs.Add(1)
		<-gate
		return 42, nil
	})
	req := Request{Strategy: "Graph", Query: "cardiac arrest", K: 10}
	const n = 20
	var wg sync.WaitGroup
	errs := make([]error, n)
	vals := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i] = svc.Search(context.Background(), req)
		}(i)
	}
	for svc.flights.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // let the remaining callers join the flight
	close(gate)
	wg.Wait()
	if execs.Load() != 1 {
		t.Fatalf("engine executed %d times under %d concurrent identical queries", execs.Load(), n)
	}
	for i := range vals {
		if errs[i] != nil || vals[i] != 42 {
			t.Fatalf("caller %d: (%d, %v)", i, vals[i], errs[i])
		}
	}
	// And a subsequent call is a plain cache hit.
	before := svc.Stats().Snapshot().CacheHits
	if _, err := svc.Search(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if after := svc.Stats().Snapshot().CacheHits; after != before+1 {
		t.Fatalf("cache hits %d -> %d, want +1", before, after)
	}
}

func TestServiceShedsWhenSaturated(t *testing.T) {
	cfg := testConfig()
	cfg.MaxConcurrent = 1
	cfg.QueueWait = 0
	gate := make(chan struct{})
	svc := NewService(cfg, func(ctx context.Context, req Request) (int, error) {
		<-gate
		return 1, nil
	})
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		if _, err := svc.Search(context.Background(), Request{Query: "blocker"}); err != nil {
			t.Errorf("blocker: %v", err)
		}
	}()
	for svc.adm.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := svc.Search(context.Background(), Request{Query: "shed-me"}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated search = %v, want ErrOverloaded", err)
	}
	if StatusFor(ErrOverloaded) != 429 {
		t.Fatal("ErrOverloaded must map to 429")
	}
	snap := svc.Stats().Snapshot()
	if snap.Shed == 0 {
		t.Fatalf("shed counter = %d, want > 0", snap.Shed)
	}
	close(gate)
	<-blockerDone
}

func TestServiceTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.Timeout = 20 * time.Millisecond
	svc := NewService(cfg, func(ctx context.Context, req Request) (int, error) {
		<-ctx.Done() // a well-behaved exec observes the deadline
		return 0, ctx.Err()
	})
	_, err := svc.Search(context.Background(), Request{Query: "slow"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if StatusFor(err) != 504 {
		t.Fatalf("status = %d, want 504", StatusFor(err))
	}
	if snap := svc.Stats().Snapshot(); snap.Timeouts != 1 {
		t.Fatalf("timeouts = %d", snap.Timeouts)
	}
	// A failed execution must not be cached.
	if _, ok := svc.Cache().Get(Request{Query: "slow"}.Key()); ok {
		t.Fatal("timed-out result was cached")
	}
}

// Caller cancellation detaches the caller but neither aborts the shared
// flight for others nor leaks goroutines once flights drain.
func TestServiceCanceledCallersDoNotLeakGoroutines(t *testing.T) {
	cfg := testConfig()
	cfg.Timeout = 50 * time.Millisecond
	cfg.MaxConcurrent = 8
	svc := NewService(cfg, func(ctx context.Context, req Request) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	})
	runtime.GC()
	baseline := runtime.NumGoroutine()

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() {
				time.Sleep(time.Duration(i%5) * time.Millisecond)
				cancel()
			}()
			_, err := svc.Search(ctx, Request{Query: fmt.Sprintf("q-%d", i%8)})
			if err == nil {
				t.Errorf("request %d unexpectedly succeeded", i)
			}
		}(i)
	}
	wg.Wait()

	// Flights keep running for up to Timeout after callers left; wait
	// for the goroutine count to return to baseline.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: baseline %d, now %d — serving layer leaked", baseline, runtime.NumGoroutine())
}

func TestServiceTTLExpiryReexecutes(t *testing.T) {
	cfg := testConfig()
	cfg.CacheTTL = 30 * time.Second
	var execs atomic.Int64
	svc := NewService(cfg, func(ctx context.Context, req Request) (int, error) {
		execs.Add(1)
		return int(execs.Load()), nil
	})
	now := time.Unix(5000, 0)
	svc.Cache().now = func() time.Time { return now }
	req := Request{Query: "q", K: 5}
	if v, _ := svc.Search(context.Background(), req); v != 1 {
		t.Fatalf("first = %d", v)
	}
	if v, _ := svc.Search(context.Background(), req); v != 1 {
		t.Fatalf("cached = %d", v)
	}
	now = now.Add(31 * time.Second)
	if v, _ := svc.Search(context.Background(), req); v != 2 {
		t.Fatalf("after TTL = %d, want re-execution", v)
	}
}

func TestServiceAdmit(t *testing.T) {
	cfg := testConfig()
	cfg.MaxConcurrent = 1
	svc := NewService(cfg, func(ctx context.Context, req Request) (int, error) { return 0, nil })
	ctx, release, err := svc.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("admitted context has no deadline")
	}
	if _, _, err := svc.Admit(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second Admit = %v, want ErrOverloaded", err)
	}
	release()
	ctx2, release2, err := svc.Admit(context.Background())
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	release2()
	if ctx2.Err() == nil {
		t.Fatal("release must cancel the admitted context")
	}
}

func TestRequestKeyRoundTrip(t *testing.T) {
	a := Request{Strategy: "Graph", Query: `"cardiac arrest" epi`, K: 10, Offset: 5}
	b := a
	if a.Key() != b.Key() {
		t.Fatal("identical requests produced different keys")
	}
	b.Offset = 6
	if a.Key() == b.Key() {
		t.Fatal("offset not part of key")
	}
	c := Request{Strategy: "Graph", Query: "q", K: 1, Offset: 23}
	d := Request{Strategy: "Graph", Query: "q", K: 12, Offset: 3}
	if c.Key() == d.Key() {
		t.Fatal("k/offset concatenation ambiguous")
	}
}

package serving

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSingleflightExecutesOnce(t *testing.T) {
	var g Group[int]
	var calls atomic.Int64
	gate := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	results := make([]int, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i], _ = g.Do(context.Background(), "k", func(context.Context) (int, error) {
				calls.Add(1)
				<-gate // hold the flight open until everyone has joined
				return 42, nil
			})
		}(i)
	}
	// Wait until the flight is registered and give joiners time to pile on.
	for g.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()
	if c := calls.Load(); c != 1 {
		t.Fatalf("fn executed %d times, want 1", c)
	}
	for i := range results {
		if errs[i] != nil || results[i] != 42 {
			t.Fatalf("caller %d got (%d, %v)", i, results[i], errs[i])
		}
	}
	if g.Shared() == 0 {
		t.Fatal("no calls reported shared")
	}
	if g.InFlight() != 0 {
		t.Fatalf("flights still registered: %d", g.InFlight())
	}
}

func TestSingleflightSequentialCallsRerun(t *testing.T) {
	var g Group[int]
	calls := 0
	for i := 0; i < 3; i++ {
		v, err, shared := g.Do(context.Background(), "k", func(context.Context) (int, error) {
			calls++
			return calls, nil
		})
		if err != nil || shared || v != i+1 {
			t.Fatalf("call %d: (%d, %v, shared=%v)", i, v, err, shared)
		}
	}
}

func TestSingleflightDistinctKeysDoNotCoalesce(t *testing.T) {
	var g Group[string]
	var wg sync.WaitGroup
	var calls atomic.Int64
	for _, k := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			v, err, _ := g.Do(context.Background(), k, func(context.Context) (string, error) {
				calls.Add(1)
				return k, nil
			})
			if err != nil || v != k {
				t.Errorf("key %s: (%q, %v)", k, v, err)
			}
		}(k)
	}
	wg.Wait()
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
}

// When the LAST waiter abandons a flight, the flight's context is
// canceled too: nobody is waiting for the answer, so the execution
// (shard fan-out, peer RPCs) must stop instead of running to its
// deadline.
func TestSingleflightAbandonCancelsFlight(t *testing.T) {
	var g Group[int]
	execCtx := make(chan context.Context, 1)
	ctx, cancel := context.WithCancel(context.Background())
	v, err, _ := g.Do(ctx, "k", func(fctx context.Context) (int, error) {
		execCtx <- fctx
		cancel() // the only caller hangs up mid-execution
		<-fctx.Done()
		return 0, fctx.Err()
	})
	if err != context.Canceled || v != 0 {
		t.Fatalf("abandoning caller got (%d, %v), want (0, context.Canceled)", v, err)
	}
	fctx := <-execCtx
	select {
	case <-fctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("flight context not canceled after the last waiter abandoned")
	}
	// The abandoned key is free again: a new caller starts a fresh
	// flight rather than coalescing onto the canceled one.
	v, err, shared := g.Do(context.Background(), "k", func(fctx context.Context) (int, error) {
		if fctx.Err() != nil {
			t.Error("fresh flight started with a dead context")
		}
		return 9, nil
	})
	if err != nil || v != 9 || shared {
		t.Fatalf("post-abandon call got (%d, %v, shared=%v), want (9, nil, false)", v, err, shared)
	}
}

// A second live waiter keeps the flight alive when the first abandons:
// only the LAST departure cancels.
func TestSingleflightSurvivingWaiterKeepsFlightAlive(t *testing.T) {
	var g Group[int]
	gate := make(chan struct{})
	var sawCancel atomic.Bool
	leaderDone := make(chan error, 1)
	ctx1, cancel1 := context.WithCancel(context.Background())
	go func() {
		_, err, _ := g.Do(ctx1, "k", func(fctx context.Context) (int, error) {
			<-gate
			sawCancel.Store(fctx.Err() != nil)
			return 7, nil
		})
		leaderDone <- err
	}()
	for g.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	survivorDone := make(chan error, 1)
	go func() {
		v, err, _ := g.Do(context.Background(), "k", func(context.Context) (int, error) {
			t.Error("survivor must not start a second flight")
			return 0, nil
		})
		if v != 7 && err == nil {
			t.Errorf("survivor got %d, want 7", v)
		}
		survivorDone <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel1() // the leader hangs up; the survivor still wants the answer
	if err := <-leaderDone; err != context.Canceled {
		t.Fatalf("abandoning leader got %v, want context.Canceled", err)
	}
	time.Sleep(5 * time.Millisecond)
	close(gate)
	if err := <-survivorDone; err != nil {
		t.Fatalf("surviving waiter got %v, want nil", err)
	}
	if sawCancel.Load() {
		t.Fatal("flight context was canceled while a waiter remained")
	}
}

// A waiter that cancels gets its context error immediately, while the
// flight itself completes and serves later callers from the same run.
func TestSingleflightWaiterCancel(t *testing.T) {
	var g Group[int]
	gate := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, err, _ := g.Do(context.Background(), "k", func(context.Context) (int, error) {
			<-gate
			return 7, nil
		})
		if err != nil || v != 7 {
			t.Errorf("leader got (%d, %v)", v, err)
		}
	}()
	for g.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err, shared := g.Do(ctx, "k", func(context.Context) (int, error) {
			t.Error("waiter must not start a second flight")
			return 0, nil
		})
		if !shared {
			t.Error("waiter not marked shared")
		}
		waiterDone <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-waiterDone; err != context.Canceled {
		t.Fatalf("canceled waiter got %v, want context.Canceled", err)
	}
	close(gate)
	<-leaderDone
}

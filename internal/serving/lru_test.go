package serving

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCacheGetSet(t *testing.T) {
	c := NewCache[string](8, 0)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Set("a", "1")
	if v, ok := c.Get("a"); !ok || v != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	c.Set("a", "2") // overwrite
	if v, _ := c.Get("a"); v != "2" {
		t.Fatalf("after overwrite Get(a) = %q", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	m := c.Metrics()
	if m.Hits != 2 || m.Misses != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache[int](3, 0) // small → single shard → exact LRU
	c.Set("a", 1)
	c.Set("b", 2)
	c.Set("c", 3)
	c.Get("a") // refresh a; b is now oldest
	c.Set("d", 4)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted, want retained", k)
		}
	}
	if ev := c.Metrics().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestCacheBoundHoldsUnderChurn(t *testing.T) {
	const capacity = 128
	c := NewCache[int](capacity, 0) // ≥ 4*shards → sharded
	for i := 0; i < 10*capacity; i++ {
		c.Set(fmt.Sprintf("key-%d", i), i)
	}
	if n := c.Len(); n > capacity {
		t.Fatalf("cache grew to %d entries, bound %d", n, capacity)
	}
	if n := c.Len(); n < capacity/2 {
		t.Fatalf("cache holds only %d entries, suspiciously few for bound %d", n, capacity)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := NewCache[int](8, time.Minute)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	c.Set("a", 1)
	now = now.Add(30 * time.Second)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("entry expired before TTL")
	}
	now = now.Add(45 * time.Second) // 75s after insertion; the Get above does not extend TTL
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry survived past TTL")
	}
	m := c.Metrics()
	if m.Expired != 1 {
		t.Fatalf("expired = %d, want 1", m.Expired)
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry still resident, Len = %d", c.Len())
	}
	// Set refreshes the clock.
	c.Set("a", 2)
	now = now.Add(30 * time.Second)
	if v, ok := c.Get("a"); !ok || v != 2 {
		t.Fatalf("re-set entry: %d, %v", v, ok)
	}
}

func TestCachePurge(t *testing.T) {
	c := NewCache[int](64, 0)
	for i := 0; i < 50; i++ {
		c.Set(fmt.Sprintf("k%d", i), i)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after purge = %d", c.Len())
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("purged entry still readable")
	}
}

// TestCacheConcurrent hammers all operations from many goroutines; run
// under -race this is the data-race check for the sharded paths.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache[int](256, time.Minute)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%d", (g*31+i)%400)
				if i%3 == 0 {
					c.Set(k, i)
				} else {
					c.Get(k)
				}
				if i%100 == 0 {
					c.Len()
					c.Metrics()
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 256 {
		t.Fatalf("bound violated under concurrency: %d", n)
	}
}

package serving

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrOverloaded is returned when admission control sheds a request
// because every worker slot stayed busy for the whole queue wait.
// HTTP front ends map it to 429 Too Many Requests.
var ErrOverloaded = errors.New("serving: overloaded, request shed")

// Admission is a semaphore-bounded admission controller: at most max
// requests hold a slot at once, and a request that cannot get a slot
// within the configured wait is shed with ErrOverloaded instead of
// queueing without bound.
type Admission struct {
	slots   chan struct{}
	maxWait time.Duration
	shed    atomic.Int64
	adm     atomic.Int64
}

// AdmissionMetrics is a point-in-time view of the controller.
type AdmissionMetrics struct {
	Capacity int   `json:"capacity"`
	InFlight int   `json:"inFlight"`
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
}

// NewAdmission returns a controller with max slots (raised to 1 if
// smaller). maxWait is how long an arriving request may wait for a
// slot before being shed; 0 sheds immediately when saturated.
func NewAdmission(max int, maxWait time.Duration) *Admission {
	if max < 1 {
		max = 1
	}
	return &Admission{slots: make(chan struct{}, max), maxWait: maxWait}
}

// Acquire obtains a worker slot, waiting up to the queue wait. It
// returns a release function that must be called exactly once, or
// ErrOverloaded when shedding (ctx errors pass through when the caller
// gives up first).
func (a *Admission) Acquire(ctx context.Context) (func(), error) {
	select {
	case a.slots <- struct{}{}:
		a.adm.Add(1)
		return a.releaseFunc(), nil
	default:
	}
	if a.maxWait <= 0 {
		a.shed.Add(1)
		return nil, ErrOverloaded
	}
	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		a.adm.Add(1)
		return a.releaseFunc(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-timer.C:
		a.shed.Add(1)
		return nil, ErrOverloaded
	}
}

func (a *Admission) releaseFunc() func() {
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			<-a.slots
		}
	}
}

// InFlight reports how many slots are currently held.
func (a *Admission) InFlight() int { return len(a.slots) }

// Metrics returns the controller counters.
func (a *Admission) Metrics() AdmissionMetrics {
	return AdmissionMetrics{
		Capacity: cap(a.slots),
		InFlight: len(a.slots),
		Admitted: a.adm.Load(),
		Shed:     a.shed.Load(),
	}
}

package serving

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"
	"time"
)

// CacheMetrics is a point-in-time view of a Cache's counters.
type CacheMetrics struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Expired   int64 `json:"expired"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}

// Cache is a sharded LRU cache with optional per-entry TTL and a hard
// entry bound. All methods are safe for concurrent use; each shard has
// its own lock, so unrelated keys rarely contend.
//
// A TTL of zero (or negative) disables expiry; entries then live until
// evicted by the LRU bound.
type Cache[V any] struct {
	shards []cacheShard[V]
	seed   maphash.Seed
	ttl    time.Duration
	cap    int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	expired   atomic.Int64

	// now is replaceable by tests to exercise TTL deterministically.
	now func() time.Time
}

type cacheShard[V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry[V any] struct {
	key    string
	val    V
	stored time.Time
}

// cacheShards is the shard count for caches large enough to split;
// small caches use a single shard so the LRU bound stays exact.
const cacheShards = 16

// NewCache returns a cache holding at most capacity entries, expiring
// them ttl after insertion (ttl <= 0 means no expiry). Capacities
// below 1 are raised to 1.
func NewCache[V any](capacity int, ttl time.Duration) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	n := cacheShards
	if capacity < 4*cacheShards {
		n = 1 // exact LRU for small caches
	}
	c := &Cache[V]{
		shards: make([]cacheShard[V], n),
		seed:   maphash.MakeSeed(),
		ttl:    ttl,
		cap:    capacity,
		now:    time.Now,
	}
	per := (capacity + n - 1) / n
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].order = list.New()
		c.shards[i].items = make(map[string]*list.Element)
	}
	return c
}

func (c *Cache[V]) shard(key string) *cacheShard[V] {
	if len(c.shards) == 1 {
		return &c.shards[0]
	}
	return &c.shards[maphash.String(c.seed, key)%uint64(len(c.shards))]
}

// Get returns the value cached under key, refreshing its recency.
// Expired entries are removed and reported as misses.
func (c *Cache[V]) Get(key string) (V, bool) {
	var zero V
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return zero, false
	}
	ent := el.Value.(*cacheEntry[V])
	if c.ttl > 0 && c.now().Sub(ent.stored) > c.ttl {
		s.order.Remove(el)
		delete(s.items, key)
		s.mu.Unlock()
		c.expired.Add(1)
		c.misses.Add(1)
		return zero, false
	}
	s.order.MoveToFront(el)
	v := ent.val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Set stores val under key, evicting the least recently used entry of
// the key's shard when the shard is full.
func (c *Cache[V]) Set(key string, val V) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		ent := el.Value.(*cacheEntry[V])
		ent.val = val
		ent.stored = c.now()
		s.order.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.items[key] = s.order.PushFront(&cacheEntry[V]{key: key, val: val, stored: c.now()})
	var evicted int64
	for s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry[V]).key)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// Len reports the number of live entries across all shards.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Purge drops every entry. Counters are kept.
func (c *Cache[V]) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.order.Init()
		clear(s.items)
		s.mu.Unlock()
	}
}

// Metrics returns the cache counters and current size.
func (c *Cache[V]) Metrics() CacheMetrics {
	return CacheMetrics{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Expired:   c.expired.Load(),
		Entries:   c.Len(),
		Capacity:  c.cap,
	}
}

package serving

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latWindow is how many recent request latencies the quantile estimator
// retains; older observations fall out of the window.
const latWindow = 2048

// Stats collects request-level serving counters and a sliding window of
// latencies for quantile estimation. All methods are safe for
// concurrent use.
type Stats struct {
	requests   atomic.Int64
	hits       atomic.Int64
	misses     atomic.Int64
	shared     atomic.Int64
	shed       atomic.Int64
	timeouts   atomic.Int64
	canceled   atomic.Int64
	errors     atomic.Int64
	executions atomic.Int64

	mu    sync.Mutex
	ring  [latWindow]time.Duration
	next  int
	count int64 // total observations ever
}

// StatsSnapshot is the JSON-friendly view of Stats.
type StatsSnapshot struct {
	Requests   int64           `json:"requests"`
	CacheHits  int64           `json:"cacheHits"`
	CacheMiss  int64           `json:"cacheMisses"`
	Coalesced  int64           `json:"coalesced"`
	Shed       int64           `json:"shed"`
	Timeouts   int64           `json:"timeouts"`
	Canceled   int64           `json:"canceled"`
	Errors     int64           `json:"errors"`
	Executions int64           `json:"executions"`
	Latency    LatencySnapshot `json:"latency"`
}

// LatencySnapshot reports quantiles over the retained window, in
// milliseconds.
type LatencySnapshot struct {
	Count  int64   `json:"count"`
	Window int     `json:"window"`
	P50Ms  float64 `json:"p50ms"`
	P90Ms  float64 `json:"p90ms"`
	P99Ms  float64 `json:"p99ms"`
	MaxMs  float64 `json:"maxMs"`
}

// Observe records one completed request's latency.
func (s *Stats) Observe(d time.Duration) {
	s.mu.Lock()
	s.ring[s.next] = d
	s.next = (s.next + 1) % latWindow
	s.count++
	s.mu.Unlock()
}

// Snapshot returns the current counters and latency quantiles.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Requests:   s.requests.Load(),
		CacheHits:  s.hits.Load(),
		CacheMiss:  s.misses.Load(),
		Coalesced:  s.shared.Load(),
		Shed:       s.shed.Load(),
		Timeouts:   s.timeouts.Load(),
		Canceled:   s.canceled.Load(),
		Errors:     s.errors.Load(),
		Executions: s.executions.Load(),
		Latency:    s.latency(),
	}
}

func (s *Stats) latency() LatencySnapshot {
	s.mu.Lock()
	n := int(s.count)
	if n > latWindow {
		n = latWindow
	}
	window := make([]time.Duration, n)
	copy(window, s.ring[:n])
	total := s.count
	s.mu.Unlock()

	snap := LatencySnapshot{Count: total, Window: n}
	if n == 0 {
		return snap
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	q := func(p float64) float64 {
		i := int(p * float64(n-1))
		return ms(window[i])
	}
	snap.P50Ms = q(0.50)
	snap.P90Ms = q(0.90)
	snap.P99Ms = q(0.99)
	snap.MaxMs = ms(window[n-1])
	return snap
}

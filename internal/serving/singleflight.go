package serving

import (
	"context"
	"sync"
	"sync/atomic"
)

// Group deduplicates concurrent calls that share a key: the first call
// starts the work, later calls wait for the same result. The work runs
// in its own goroutine under a context detached from any single caller,
// so one impatient caller canceling does not abort a computation other
// callers still want. Flights are waiter-refcounted: when the LAST
// waiter abandons (its context fires), the flight's context is canceled
// too — a search nobody is waiting on must not keep fanning out over
// shards and peers.
type Group[V any] struct {
	mu     sync.Mutex
	calls  map[string]*flight[V]
	shared atomic.Int64
}

type flight[V any] struct {
	done    chan struct{}
	val     V
	err     error
	waiters int
	cancel  context.CancelFunc
}

// Do returns the result of fn for key, executing fn at most once among
// concurrent callers with the same key. The boolean reports whether the
// result was shared with (or abandoned while waiting on) another
// caller's flight. fn receives a context detached from any one caller's
// cancellation but canceled once every waiter has abandoned; it must
// additionally bound its own lifetime (the serving layer passes a
// deadline).
func (g *Group[V]) Do(ctx context.Context, key string, fn func(context.Context) (V, error)) (V, error, bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flight[V])
	}
	if f, ok := g.calls[key]; ok {
		f.waiters++
		g.mu.Unlock()
		g.shared.Add(1)
		return g.wait(ctx, key, f, true)
	}
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	f := &flight[V]{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.calls[key] = f
	g.mu.Unlock()

	go func() {
		f.val, f.err = fn(fctx)
		g.mu.Lock()
		// The last abandoning waiter may already have removed the flight
		// (and a fresh flight may have taken the key); only delete our own.
		if g.calls[key] == f {
			delete(g.calls, key)
		}
		g.mu.Unlock()
		cancel()
		close(f.done)
	}()
	return g.wait(ctx, key, f, false)
}

func (g *Group[V]) wait(ctx context.Context, key string, f *flight[V], shared bool) (V, error, bool) {
	select {
	case <-f.done:
		return f.val, f.err, shared
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		if f.waiters == 0 {
			// Remove the flight from the map BEFORE canceling it, so a new
			// caller arriving between the two steps starts a fresh flight
			// instead of coalescing onto one that is about to be canceled.
			if g.calls[key] == f {
				delete(g.calls, key)
			}
			g.mu.Unlock()
			f.cancel()
		} else {
			g.mu.Unlock()
		}
		var zero V
		return zero, ctx.Err(), shared
	}
}

// Shared reports how many calls were coalesced onto another caller's
// flight since the group was created.
func (g *Group[V]) Shared() int64 { return g.shared.Load() }

// InFlight reports the number of keys currently executing.
func (g *Group[V]) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}

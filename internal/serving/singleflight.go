package serving

import (
	"context"
	"sync"
	"sync/atomic"
)

// Group deduplicates concurrent calls that share a key: the first call
// starts the work, later calls wait for the same result. The work runs
// in its own goroutine with a caller-independent context, so one
// impatient caller canceling does not abort the shared computation —
// waiters that cancel simply stop waiting (and get their ctx error),
// while the flight completes and can still populate caches.
type Group[V any] struct {
	mu     sync.Mutex
	calls  map[string]*flight[V]
	shared atomic.Int64
}

type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do returns the result of fn for key, executing fn at most once among
// concurrent callers with the same key. The boolean reports whether the
// result was shared with (or abandoned while waiting on) another
// caller's flight. fn receives a context detached from any caller; it
// must bound its own lifetime (the serving layer passes a deadline).
func (g *Group[V]) Do(ctx context.Context, key string, fn func(context.Context) (V, error)) (V, error, bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flight[V])
	}
	if f, ok := g.calls[key]; ok {
		g.mu.Unlock()
		g.shared.Add(1)
		return g.wait(ctx, f, true)
	}
	f := &flight[V]{done: make(chan struct{})}
	g.calls[key] = f
	g.mu.Unlock()

	go func() {
		f.val, f.err = fn(context.WithoutCancel(ctx))
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(f.done)
	}()
	return g.wait(ctx, f, false)
}

func (g *Group[V]) wait(ctx context.Context, f *flight[V], shared bool) (V, error, bool) {
	select {
	case <-f.done:
		return f.val, f.err, shared
	case <-ctx.Done():
		var zero V
		return zero, ctx.Err(), shared
	}
}

// Shared reports how many calls were coalesced onto another caller's
// flight since the group was created.
func (g *Group[V]) Shared() int64 { return g.shared.Load() }

// InFlight reports the number of keys currently executing.
func (g *Group[V]) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}

// Package serving is the production serving layer between the HTTP
// handlers and the query pipeline. It makes the hot path bounded and
// reusable without changing what a search returns:
//
//	request ──► result cache (fast path)
//	                │ miss
//	                ▼
//	        singleflight group ──► admission semaphore ──► deadline ──► exec
//	                                      │ saturated                    │ ok
//	                                      ▼                              ▼
//	                                 ErrOverloaded                  cache fill
//
// Concurrent identical requests execute once (singleflight); repeated
// requests are served from a sharded LRU with TTL; total concurrent
// executions are bounded by a semaphore that sheds excess load with
// ErrOverloaded instead of queueing without bound; and every execution
// runs under a context deadline. The layer is generic over the result
// type so the same machinery backs the HTTP result cache and the query
// engine's keyword-list cache.
package serving

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Request identifies one cacheable search. Query must already be
// normalized (lowercased, phrase-quoted) by the caller so that
// equivalent spellings share a cache entry.
type Request struct {
	Strategy string
	Query    string
	K        int
	Offset   int
	// Epoch namespaces the cache by data-plane generation: after a hot
	// reload, requests carry the new generation's epoch and can never
	// observe results computed over the old corpus. Zero for callers
	// without generational data.
	Epoch uint64
	// NoCache bypasses the result cache (no read) and the singleflight
	// group, forcing a fresh execution under admission control and the
	// deadline. Traced (?debug=trace) requests set it so the full
	// pipeline runs and the span tree is complete rather than a cache
	// hit; the fresh result still fills the cache for later requests.
	NoCache bool
}

// Key is the cache and singleflight identity of the request.
func (r Request) Key() string {
	return strconv.FormatUint(r.Epoch, 10) + "\x1f" + r.Strategy + "\x1f" + r.Query + "\x1f" +
		strconv.Itoa(r.K) + "\x1f" + strconv.Itoa(r.Offset)
}

// Exec computes the uncached answer for a request. It must honor the
// context deadline.
type Exec[V any] func(ctx context.Context, req Request) (V, error)

// Config bounds the serving layer.
type Config struct {
	// CacheCapacity is the maximum number of cached results.
	CacheCapacity int
	// CacheTTL expires cached results; <= 0 means no expiry.
	CacheTTL time.Duration
	// MaxConcurrent bounds simultaneous executions.
	MaxConcurrent int
	// QueueWait is how long a request may wait for an execution slot
	// before being shed with ErrOverloaded.
	QueueWait time.Duration
	// Timeout is the per-execution deadline.
	Timeout time.Duration
}

// DefaultConfig returns serving bounds suitable for the demo service:
// 1024 cached results for 60s, 32 concurrent executions, 100ms queue
// wait, 10s execution deadline.
func DefaultConfig() Config {
	return Config{
		CacheCapacity: 1024,
		CacheTTL:      60 * time.Second,
		MaxConcurrent: 32,
		QueueWait:     100 * time.Millisecond,
		Timeout:       10 * time.Second,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = d.CacheCapacity
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = d.MaxConcurrent
	}
	if c.Timeout <= 0 {
		c.Timeout = d.Timeout
	}
	return c
}

// Service serves requests through the cache → singleflight → admission
// pipeline. V is the (immutable, shareable) result type.
type Service[V any] struct {
	cfg       Config
	exec      Exec[V]
	cache     *Cache[V]
	flights   Group[V]
	adm       *Admission
	stats     Stats
	cacheable func(V) bool
	latency   *obs.Histogram // nil until Instrument
}

// NewService builds a service around exec with the given bounds
// (zero-valued fields fall back to DefaultConfig).
func NewService[V any](cfg Config, exec Exec[V]) *Service[V] {
	cfg = cfg.withDefaults()
	return &Service[V]{
		cfg:   cfg,
		exec:  exec,
		cache: NewCache[V](cfg.CacheCapacity, cfg.CacheTTL),
		adm:   NewAdmission(cfg.MaxConcurrent, cfg.QueueWait),
	}
}

// SetCacheFilter installs a predicate deciding whether a successful
// result may be cached; results it rejects are still returned but
// recomputed on the next request. The server uses this to keep
// degraded (IR-only) search answers out of the result cache, so that a
// recovered ontology path is visible immediately rather than after TTL
// expiry. Call before serving traffic; it is not synchronized with
// in-flight requests.
func (s *Service[V]) SetCacheFilter(f func(V) bool) { s.cacheable = f }

// Search answers the request, from cache when possible. On a miss the
// execution is deduplicated across concurrent identical requests,
// admitted through the semaphore (ErrOverloaded when shedding), run
// under the configured deadline (context.DeadlineExceeded on expiry),
// and cached on success. The whole call is a "serving.search" span with
// a "serving.cache" child for the fast-path lookup and a
// "serving.exec" child around the uncached execution (flights detach
// from the caller's cancellation but keep its values, so the execution
// spans land in the first caller's trace).
func (s *Service[V]) Search(ctx context.Context, req Request) (V, error) {
	start := time.Now()
	s.stats.requests.Add(1)
	ctx, sp := obs.StartSpan(ctx, "serving.search")
	sp.SetAttr("strategy", req.Strategy)
	sp.SetAttr("query", req.Query)
	defer sp.End()
	key := req.Key()

	_, csp := obs.StartSpan(ctx, "serving.cache")
	var v V
	var hit bool
	if req.NoCache {
		csp.SetAttr("bypass", true)
	} else {
		v, hit = s.cache.Get(key)
	}
	csp.SetAttr("hit", hit)
	csp.End()
	if hit {
		s.stats.hits.Add(1)
		s.observe(time.Since(start))
		sp.SetAttr("source", "cache")
		return v, nil
	}
	s.stats.misses.Add(1)
	sp.SetAttr("source", "exec")

	run := func(fctx context.Context) (V, error) {
		release, err := s.adm.Acquire(fctx)
		if err != nil {
			var zero V
			return zero, err
		}
		defer release()
		// A concurrent flight may have filled the cache between our
		// lookup and this flight starting.
		if !req.NoCache {
			if v, ok := s.cache.Get(key); ok {
				return v, nil
			}
		}
		ectx, cancel := context.WithTimeout(fctx, s.cfg.Timeout)
		defer cancel()
		s.stats.executions.Add(1)
		ectx, esp := obs.StartSpan(ectx, "serving.exec")
		v, err := s.exec(ectx, req)
		if err != nil {
			esp.SetAttr("error", err.Error())
		}
		esp.End()
		if err == nil && (s.cacheable == nil || s.cacheable(v)) {
			s.cache.Set(key, v)
		}
		return v, err
	}

	var err error
	var shared bool
	if req.NoCache {
		// No singleflight either: a coalesced traced request would ride a
		// flight whose spans belong to another trace.
		v, err = run(ctx)
	} else {
		v, err, shared = s.flights.Do(ctx, key, run)
	}
	if shared {
		s.stats.shared.Add(1)
		sp.SetAttr("coalesced", true)
	}
	switch {
	case err == nil:
	case errors.Is(err, ErrOverloaded):
		s.stats.shed.Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		s.stats.timeouts.Add(1)
	case errors.Is(err, context.Canceled):
		s.stats.canceled.Add(1)
	default:
		s.stats.errors.Add(1)
	}
	s.observe(time.Since(start))
	return v, err
}

// observe records one request latency in the sliding-window stats and,
// when Instrument installed one, the registry histogram.
func (s *Service[V]) observe(d time.Duration) {
	s.stats.Observe(d)
	if s.latency != nil {
		s.latency.Observe(d.Seconds())
	}
}

// Instrument bridges the service's counters into an obs.Registry under
// the given metric-name prefix (e.g. "xontorank_search") and installs a
// latency histogram that Search observes. Like SetCacheFilter, call it
// before serving traffic; it is not synchronized with in-flight
// requests.
func (s *Service[V]) Instrument(reg *obs.Registry, prefix string) {
	cf := func(name, help string, load func() int64) {
		reg.CounterFunc(prefix+name, help, func() float64 { return float64(load()) })
	}
	cf("_requests_total", "Search requests received by the serving layer.", s.stats.requests.Load)
	cf("_cache_hits_total", "Requests answered from the result cache.", s.stats.hits.Load)
	cf("_cache_misses_total", "Requests missing the result cache.", s.stats.misses.Load)
	cf("_coalesced_total", "Requests coalesced onto another request's execution.", s.stats.shared.Load)
	cf("_shed_total", "Requests shed by admission control (HTTP 429).", s.stats.shed.Load)
	cf("_timeouts_total", "Requests that exceeded the execution deadline.", s.stats.timeouts.Load)
	cf("_canceled_total", "Requests abandoned by the caller.", s.stats.canceled.Load)
	cf("_errors_total", "Requests failed for other reasons.", s.stats.errors.Load)
	cf("_executions_total", "Uncached executions of the search pipeline.", s.stats.executions.Load)
	reg.GaugeFunc(prefix+"_inflight", "Executions currently holding an admission slot.",
		func() float64 { return float64(s.adm.InFlight()) })
	reg.GaugeFunc(prefix+"_cache_entries", "Entries resident in the result cache.",
		func() float64 { return float64(s.cache.Len()) })
	s.latency = reg.Histogram(prefix+"_latency_seconds",
		"End-to-end serving latency of Search, including cache hits.", nil)
}

// Admit exposes the admission semaphore for handlers that want
// concurrency bounds and deadlines without result caching (e.g.
// expensive explanation endpoints). The returned context carries the
// serving deadline; release must be called when the work finishes.
func (s *Service[V]) Admit(ctx context.Context) (context.Context, func(), error) {
	release, err := s.adm.Acquire(ctx)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.stats.shed.Add(1)
		}
		return ctx, nil, err
	}
	dctx, cancel := context.WithTimeout(ctx, s.cfg.Timeout)
	return dctx, func() { cancel(); release() }, nil
}

// Cache exposes the result cache (benchmarks purge it between runs).
func (s *Service[V]) Cache() *Cache[V] { return s.cache }

// Stats exposes the request counters.
func (s *Service[V]) Stats() *Stats { return &s.stats }

// Config returns the effective (defaulted) bounds.
func (s *Service[V]) Config() Config { return s.cfg }

// Metrics is the /metrics view of one service.
type Metrics struct {
	Requests     StatsSnapshot    `json:"requests"`
	Cache        CacheMetrics     `json:"cache"`
	Admission    AdmissionMetrics `json:"admission"`
	Singleflight struct {
		Coalesced int64 `json:"coalesced"`
		InFlight  int   `json:"inFlight"`
	} `json:"singleflight"`
}

// Metrics assembles the counters of every component.
func (s *Service[V]) Metrics() Metrics {
	m := Metrics{
		Requests:  s.stats.Snapshot(),
		Cache:     s.cache.Metrics(),
		Admission: s.adm.Metrics(),
	}
	m.Singleflight.Coalesced = s.flights.Shared()
	m.Singleflight.InFlight = s.flights.InFlight()
	return m
}

// StatusFor maps a serving error to an HTTP status: ErrOverloaded →
// 429, deadline expiry → 504, caller cancellation → 499 (nginx's
// client-closed-request), anything else → 500.
func StatusFor(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	default:
		return http.StatusInternalServerError
	}
}

// Package ingest is the validating, quarantining, checkpointed
// ingestion pipeline between upstream document feeds and the
// searchable corpus. It exists because an EMR system ingests records
// from many producers it does not control: one truncated upload must
// cost exactly one document, never the batch, and a crash mid-ingest
// must resume where it stopped.
//
// Per document, the pipeline:
//
//	read ──► guarded parse (size/depth limits) ──► CDA validation
//	   │ failure at any stage                          │ ok
//	   ▼                                               ▼
//	quarantine/<file> + <file>.reason.json      manifest: ok
//	manifest: quarantined                       corpus entry
//
// The manifest (one fsynced JSON line per terminal document, see
// Manifest) makes the pipeline resumable: a rerun carries forward
// every manifested document whose content hash is unchanged, so a
// crash re-processes only unfinished documents. Quarantined files are
// moved out of the source directory with a machine-readable reason
// file beside them for triage.
package ingest

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/xmltree"
)

// Failpoints at the pipeline's failure-prone boundaries (armed by the
// fault-lane tests; inert in production).
const (
	// FPRead fires before each source file read.
	FPRead = "ingest.read"
	// FPValidate fires before each document validation (error mode makes
	// a healthy document fail validation and be quarantined).
	FPValidate = "ingest.validate"
	// FPQuarantine fires before each quarantine move.
	FPQuarantine = "ingest.quarantine"
)

// Config locates and bounds one ingestion run.
type Config struct {
	// SourceDir holds the .xml documents to ingest.
	SourceDir string
	// QuarantineDir receives rejected files; default is
	// <SourceDir>/../quarantine.
	QuarantineDir string
	// ManifestPath is the checkpoint file; default is
	// <SourceDir>/../ingest.manifest.
	ManifestPath string
	// Limits guard each parse; the zero value means xmltree.DefaultLimits.
	Limits xmltree.Limits
	// ValidateCDA additionally requires ClinicalDocument structure
	// (ValidateCDA function) beyond well-formed XML.
	ValidateCDA bool
	// Logf receives progress and quarantine warnings; nil means
	// log.Printf.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	parent := filepath.Dir(strings.TrimSuffix(c.SourceDir, string(filepath.Separator)))
	if c.QuarantineDir == "" {
		c.QuarantineDir = filepath.Join(parent, "quarantine")
	}
	if c.ManifestPath == "" {
		c.ManifestPath = filepath.Join(parent, "ingest.manifest")
	}
	if c.Limits == (xmltree.Limits{}) {
		c.Limits = xmltree.DefaultLimits()
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// FileOutcome is one newly quarantined document in a Report.
type FileOutcome struct {
	Name   string `json:"name"`
	Stage  string `json:"stage"`
	Reason string `json:"reason"`
}

// Report summarizes one ingestion run.
type Report struct {
	// Total is the number of source files considered.
	Total int `json:"total"`
	// Ingested is how many documents were newly validated this run.
	Ingested int `json:"ingested"`
	// Resumed is how many documents were carried forward from the
	// manifest (unchanged hash) without re-validation.
	Resumed int `json:"resumed"`
	// Quarantined is how many documents were newly quarantined this run.
	Quarantined int `json:"quarantined"`
	// TornManifest reports that a partial manifest record (crash
	// artifact) was found and dropped.
	TornManifest bool `json:"tornManifest,omitempty"`
	// Failures details the newly quarantined documents.
	Failures []FileOutcome `json:"failures,omitempty"`
	// Duration is the wall-clock run time.
	Duration time.Duration `json:"duration"`
}

// Summary renders the report as one log-friendly line.
func (r *Report) Summary() string {
	if r == nil {
		return "no ingest run"
	}
	return fmt.Sprintf("ingested %d (%d resumed) of %d, quarantined %d in %v",
		r.Ingested+r.Resumed, r.Resumed, r.Total, r.Quarantined, r.Duration.Round(time.Millisecond))
}

// Result is a completed ingestion: the corpus of accepted documents
// (IDs assigned in sorted file-name order, matching xmltree.LoadDir)
// plus the run report.
type Result struct {
	Corpus *xmltree.Corpus
	Report *Report
}

// Reason is the machine-readable quarantine record written beside each
// rejected file.
type Reason struct {
	// File is the original file name.
	File string `json:"file"`
	// Hash is the SHA-256 of the rejected content.
	Hash string `json:"hash"`
	// Stage names the failed pipeline stage: "read", "parse", or
	// "validate".
	Stage string `json:"stage"`
	// Error is the failure message.
	Error string `json:"error"`
	// Time is the quarantine timestamp (RFC 3339).
	Time string `json:"time"`
}

// Run ingests cfg.SourceDir: every .xml file is validated in
// isolation, failures are quarantined, successes enter the returned
// corpus, and each terminal outcome is checkpointed in the manifest
// before the next file starts. Run itself fails only on environmental
// errors — unreadable source directory, unwritable quarantine or
// manifest, context cancellation — never on document content.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	ctx, sp := obs.StartSpan(ctx, "ingest.run")
	defer sp.End()
	start := time.Now()

	entries, err := os.ReadDir(cfg.SourceDir)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".xml") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)

	if err := os.MkdirAll(cfg.QuarantineDir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	man, err := OpenManifest(cfg.ManifestPath)
	if err != nil {
		return nil, err
	}
	defer man.Close()

	report := &Report{Total: len(names), TornManifest: man.Torn()}
	if report.TornManifest {
		cfg.Logf("ingest: dropped torn trailing manifest record (crash artifact)")
	}
	corpus := xmltree.NewCorpus()
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("ingest: %w", err)
		}
		doc, err := ingestOne(cfg, man, report, name)
		if err != nil {
			return nil, err
		}
		if doc != nil {
			corpus.Add(doc)
		}
	}
	report.Duration = time.Since(start)
	sp.SetAttr("total", report.Total)
	sp.SetAttr("ingested", report.Ingested)
	sp.SetAttr("resumed", report.Resumed)
	sp.SetAttr("quarantined", report.Quarantined)
	return &Result{Corpus: corpus, Report: report}, nil
}

// ingestOne takes one file to a terminal state: (doc, nil) when it
// enters the corpus, (nil, nil) when quarantined, (nil, err) on an
// environmental failure that must abort the run.
func ingestOne(cfg Config, man *Manifest, report *Report, name string) (*xmltree.Document, error) {
	buf, err := readFile(filepath.Join(cfg.SourceDir, name))
	if err != nil {
		// An unreadable file cannot be hashed or moved; quarantine the
		// record of it (reason file only) so the failure is visible, and
		// keep going — the next run retries it.
		return nil, quarantine(cfg, man, report, name, nil, "read", err)
	}
	sum := sha256.Sum256(buf)
	hash := hex.EncodeToString(sum[:])

	if prev, ok := man.Lookup(name); ok && prev.Hash == hash {
		switch prev.Status {
		case StatusOK:
			// Checkpointed as validated and unchanged since: parse for the
			// corpus without re-running validation.
			doc, err := xmltree.ParseLimited(bytes.NewReader(buf), cfg.Limits)
			if err == nil {
				doc.Name = strings.TrimSuffix(name, ".xml")
				report.Resumed++
				return doc, nil
			}
			// The checkpoint lied (e.g. limits tightened since): fall
			// through to full validation.
		case StatusQuarantined:
			// Manifested as quarantined but still in the source dir: the
			// previous run crashed between the manifest append and the
			// move. Finish the move without a duplicate manifest record.
			if err := quarantineMove(cfg, name, buf, prev.Reason, hash); err != nil {
				return nil, err
			}
			report.Quarantined++
			report.Failures = append(report.Failures, FileOutcome{Name: name, Stage: "resume", Reason: prev.Reason})
			return nil, nil
		}
	}

	doc, stage, verr := validate(cfg, buf)
	if verr != nil {
		return nil, quarantine(cfg, man, report, name, buf, stage, verr)
	}
	if err := man.Append(Entry{Name: name, Hash: hash, Bytes: int64(len(buf)), Status: StatusOK}); err != nil {
		return nil, err
	}
	doc.Name = strings.TrimSuffix(name, ".xml")
	report.Ingested++
	return doc, nil
}

func readFile(path string) ([]byte, error) {
	if err := faultinject.Hit(FPRead); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

// validate runs the guarded parse and structural checks, naming the
// failed stage.
func validate(cfg Config, buf []byte) (*xmltree.Document, string, error) {
	if err := faultinject.Hit(FPValidate); err != nil {
		return nil, "validate", err
	}
	doc, err := xmltree.ParseLimited(bytes.NewReader(buf), cfg.Limits)
	if err != nil {
		return nil, "parse", err
	}
	if cfg.ValidateCDA {
		if err := ValidateCDA(doc); err != nil {
			return nil, "validate", err
		}
	}
	return doc, "", nil
}

// quarantine checkpoints the rejection, moves the file out of the
// source directory, and writes the machine-readable reason beside it.
// Only environmental failures (manifest or quarantine dir unwritable)
// are returned as errors.
func quarantine(cfg Config, man *Manifest, report *Report, name string, buf []byte, stage string, cause error) error {
	hash := ""
	if buf != nil {
		sum := sha256.Sum256(buf)
		hash = hex.EncodeToString(sum[:])
	}
	reason := fmt.Sprintf("%s: %v", stage, cause)
	if err := man.Append(Entry{Name: name, Hash: hash, Bytes: int64(len(buf)), Status: StatusQuarantined, Reason: reason}); err != nil {
		return err
	}
	if buf != nil {
		if err := quarantineMove(cfg, name, buf, reason, hash); err != nil {
			return err
		}
	} else if err := writeReason(cfg, name, hash, stage, cause); err != nil {
		return err
	}
	report.Quarantined++
	report.Failures = append(report.Failures, FileOutcome{Name: name, Stage: stage, Reason: cause.Error()})
	cfg.Logf("ingest: quarantined %s (%s): %v", name, stage, cause)
	return nil
}

// quarantineMove relocates the rejected file (rename when possible,
// copy+remove across filesystems) and records why.
func quarantineMove(cfg Config, name string, buf []byte, reason, hash string) error {
	if err := faultinject.Hit(FPQuarantine); err != nil {
		return fmt.Errorf("ingest: quarantining %s: %w", name, err)
	}
	src := filepath.Join(cfg.SourceDir, name)
	dst := filepath.Join(cfg.QuarantineDir, name)
	if err := os.Rename(src, dst); err != nil {
		if werr := os.WriteFile(dst, buf, 0o644); werr != nil {
			return fmt.Errorf("ingest: quarantining %s: %w", name, werr)
		}
		if rerr := os.Remove(src); rerr != nil {
			return fmt.Errorf("ingest: quarantining %s: %w", name, rerr)
		}
	}
	stage, msg := splitReason(reason)
	return writeReason(cfg, name, hash, stage, errors.New(msg))
}

func splitReason(reason string) (stage, msg string) {
	if i := strings.Index(reason, ": "); i > 0 {
		return reason[:i], reason[i+2:]
	}
	return "unknown", reason
}

func writeReason(cfg Config, name, hash, stage string, cause error) error {
	rec := Reason{
		File:  name,
		Hash:  hash,
		Stage: stage,
		Error: cause.Error(),
		Time:  time.Now().UTC().Format(time.RFC3339),
	}
	buf, err := json.MarshalIndent(rec, "", " ")
	if err != nil {
		return fmt.Errorf("ingest: reason for %s: %w", name, err)
	}
	path := filepath.Join(cfg.QuarantineDir, name+".reason.json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("ingest: reason for %s: %w", name, err)
	}
	return nil
}

package ingest

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/xmltree"
)

// Live single-document ingestion (POST /admin/ingest) reuses the
// directory pipeline's validation and quarantine semantics: the same
// guarded parse and CDA checks, and the same quarantine artifacts
// (quarantined body, reason file, manifest entry) for rejects — a bad
// live upload is triaged exactly like a bad file in the source feed.

// WithDefaults resolves the config's derived paths and zero-valued
// limits, exactly as Run does internally.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// ValidateBytes validates one in-memory document body through the
// pipeline's stages, returning the parsed document, or the failed
// stage name ("parse" or "validate") and the cause.
func ValidateBytes(cfg Config, buf []byte) (*xmltree.Document, string, error) {
	return validate(cfg.withDefaults(), buf)
}

// QuarantineBytes records a rejected live-ingest body: the body is
// written into the quarantine directory under the given file name,
// a machine-readable reason file lands beside it, and the rejection is
// checkpointed in the manifest. Only environmental failures are
// returned.
func QuarantineBytes(cfg Config, name string, buf []byte, stage string, cause error) error {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(cfg.QuarantineDir, 0o755); err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	sum := sha256.Sum256(buf)
	hash := hex.EncodeToString(sum[:])
	man, err := OpenManifest(cfg.ManifestPath)
	if err != nil {
		return err
	}
	defer man.Close()
	reason := fmt.Sprintf("%s: %v", stage, cause)
	if err := man.Append(Entry{Name: name, Hash: hash, Bytes: int64(len(buf)), Status: StatusQuarantined, Reason: reason}); err != nil {
		return err
	}
	dst := filepath.Join(cfg.QuarantineDir, name)
	if err := os.WriteFile(dst, buf, 0o644); err != nil {
		return fmt.Errorf("ingest: quarantining %s: %w", name, err)
	}
	return writeReason(cfg, name, hash, stage, cause)
}

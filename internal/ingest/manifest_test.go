package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

// TestMain enforces the failpoint-leak contract for this package.
func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := faultinject.CheckDisabled(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	os.Exit(code)
}

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m")
	m, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Torn() || m.Len() != 0 {
		t.Fatalf("fresh manifest: torn=%v len=%d", m.Torn(), m.Len())
	}
	if err := m.Append(Entry{Name: "a.xml", Hash: "h1", Bytes: 10, Status: StatusOK}); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(Entry{Name: "b.xml", Hash: "h2", Status: StatusQuarantined, Reason: "parse: boom"}); err != nil {
		t.Fatal(err)
	}
	// Re-ingest of a changed file: last record wins.
	if err := m.Append(Entry{Name: "a.xml", Hash: "h3", Bytes: 12, Status: StatusOK}); err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Torn() || m2.Len() != 2 {
		t.Fatalf("reloaded: torn=%v len=%d", m2.Torn(), m2.Len())
	}
	a, ok := m2.Lookup("a.xml")
	if !ok || a.Hash != "h3" || a.Bytes != 12 {
		t.Fatalf("a.xml = %+v ok=%v", a, ok)
	}
	b, ok := m2.Lookup("b.xml")
	if !ok || b.Status != StatusQuarantined || b.Reason != "parse: boom" {
		t.Fatalf("b.xml = %+v ok=%v", b, ok)
	}
}

// A kill -9 mid-append leaves a partial trailing line; reopening must
// drop exactly that record and keep appending cleanly after it.
func TestManifestTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m")
	m, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := m.Append(Entry{Name: fmt.Sprintf("d%d.xml", i), Hash: "h", Status: StatusOK}); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record in half.
	if err := os.Truncate(path, fi.Size()-10); err != nil {
		t.Fatal(err)
	}

	m2, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Torn() {
		t.Error("torn line not reported")
	}
	if m2.Len() != 2 {
		t.Fatalf("len = %d after torn tail", m2.Len())
	}
	if _, ok := m2.Lookup("d2.xml"); ok {
		t.Error("torn record survived")
	}
	// Appends after truncation land on a clean boundary.
	if err := m2.Append(Entry{Name: "d2.xml", Hash: "h", Status: StatusOK}); err != nil {
		t.Fatal(err)
	}
	m2.Close()
	m3, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	if m3.Torn() || m3.Len() != 3 {
		t.Fatalf("after repair: torn=%v len=%d", m3.Torn(), m3.Len())
	}
}

// A file ending in garbage that is not valid JSON is treated the same
// way as a half-written record.
func TestManifestGarbledTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m")
	m, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Append(Entry{Name: "a.xml", Hash: "h", Status: StatusOK}); err != nil {
		t.Fatal(err)
	}
	m.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"name\":\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	m2, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if !m2.Torn() || m2.Len() != 1 {
		t.Fatalf("torn=%v len=%d", m2.Torn(), m2.Len())
	}
}

package ingest

import (
	"errors"
	"fmt"

	"repro/internal/xmltree"
)

// CDA structure validation: beyond well-formed XML, an ingested record
// must look like an HL7 ClinicalDocument before it may join the
// corpus. The rules are deliberately shallow — schema validation
// proper is out of scope — but they catch the feed failures that
// matter to search: wrong document kind, missing identity, and
// half-written ontological references that would silently drop out of
// the XOnto-DIL join.

// ErrNotCDA reports a document whose root is not a ClinicalDocument.
var ErrNotCDA = errors.New("ingest: root element is not ClinicalDocument")

// ErrNoID reports a ClinicalDocument without an id element.
var ErrNoID = errors.New("ingest: ClinicalDocument has no id")

// ErrNoContent reports a ClinicalDocument with no section and no text
// anywhere — nothing for search to index.
var ErrNoContent = errors.New("ingest: ClinicalDocument has no sections or text")

// ValidateCDA checks the structural invariants. The returned error is
// the first violation found (document order).
func ValidateCDA(doc *xmltree.Document) error {
	if doc == nil || doc.Root == nil {
		return ErrNotCDA
	}
	root := doc.Root
	if root.Tag != "ClinicalDocument" {
		return fmt.Errorf("%w (got <%s>)", ErrNotCDA, root.Tag)
	}
	hasID := false
	for _, c := range root.Children {
		if c.Tag != "id" {
			continue
		}
		if ext, _ := c.Attr("extension"); ext != "" {
			hasID = true
			break
		}
		if r, _ := c.Attr("root"); r != "" {
			hasID = true
			break
		}
	}
	if !hasID {
		return ErrNoID
	}
	content := false
	var bad *xmltree.Node
	root.Walk(func(n *xmltree.Node) bool {
		if bad != nil {
			return false
		}
		if n.Tag == "section" || n.Text != "" {
			content = true
		}
		// A codeSystem attribute without a code (or vice versa) is a
		// half-written ontological reference: the DIL join would skip it
		// silently, so reject it loudly at the boundary instead.
		code, okC := n.Attr("code")
		sys, okS := n.Attr("codeSystem")
		if (okC && code != "") != (okS && sys != "") {
			bad = n
			return false
		}
		return true
	})
	if bad != nil {
		return fmt.Errorf("ingest: element <%s> at %s has a partial ontological reference (code=%q codeSystem=%q)",
			bad.Tag, bad.Path(), attrOr(bad, "code"), attrOr(bad, "codeSystem"))
	}
	if !content {
		return ErrNoContent
	}
	return nil
}

func attrOr(n *xmltree.Node, name string) string {
	v, _ := n.Attr(name)
	return v
}

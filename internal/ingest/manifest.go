package ingest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/faultinject"
)

// The manifest is the ingestion checkpoint: one JSON object per line,
// appended and fsynced after each document reaches a terminal status
// (ok or quarantined). A crash mid-ingest therefore loses at most the
// document being processed; on restart, every manifested document with
// an unchanged content hash is carried forward without re-validation.
//
// Appends after a kill -9 can leave a torn final line; OpenManifest
// tolerates it by truncating the file back to the last intact record.
// Re-ingesting a changed file simply appends a fresh record — on load,
// the last record per file name wins.

// Status is a document's terminal ingestion state.
type Status string

const (
	// StatusOK marks a document that passed validation and entered the
	// corpus.
	StatusOK Status = "ok"
	// StatusQuarantined marks a document that failed validation and was
	// moved to the quarantine directory.
	StatusQuarantined Status = "quarantined"
)

// Entry is one manifest record.
type Entry struct {
	// Name is the file name within the source directory.
	Name string `json:"name"`
	// Hash is the SHA-256 of the file content, hex-encoded. Resume only
	// trusts a record whose hash still matches the file.
	Hash string `json:"hash"`
	// Bytes is the file size when processed.
	Bytes int64 `json:"bytes"`
	// Status is the terminal state.
	Status Status `json:"status"`
	// Reason is the machine-readable failure stage for quarantined
	// documents (empty for ok).
	Reason string `json:"reason,omitempty"`
}

// FPManifestAppend fires before each manifest append; tests arm it to
// simulate a crash between documents (the record is then never
// written, exactly like a kill -9 before the append).
const FPManifestAppend = "ingest.manifest"

// Manifest is the append-only checkpoint file. Not safe for concurrent
// use; the ingester is single-writer by design.
type Manifest struct {
	path    string
	f       *os.File
	entries map[string]Entry
	// torn reports that a trailing partial record (crash artifact) was
	// found and truncated away on open.
	torn bool
}

// OpenManifest loads (creating if absent) the manifest at path and
// opens it for appending. A torn final line — the signature of a crash
// mid-append — is truncated away and reported via Torn.
func OpenManifest(path string) (*Manifest, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ingest: opening manifest: %w", err)
	}
	m := &Manifest{path: path, f: f, entries: make(map[string]Entry)}
	if err := m.load(); err != nil {
		f.Close()
		return nil, err
	}
	return m, nil
}

// load replays the records and positions the write offset after the
// last intact one. A record counts only when terminated by a newline
// AND decodable — a trailing fragment that happens to parse as JSON
// (e.g. a record truncated after a closing brace of a nested field)
// must not be trusted.
func (m *Manifest) load() error {
	buf, err := io.ReadAll(m.f)
	if err != nil {
		return fmt.Errorf("ingest: manifest read: %w", err)
	}
	var good int64
	for len(buf) > 0 {
		nl := bytes.IndexByte(buf, '\n')
		if nl < 0 {
			m.torn = true // partial final record: crash artifact
			break
		}
		line := buf[:nl]
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil || e.Name == "" {
			// A garbled record can only be the final append of a crashed
			// run; everything after it is unreachable.
			m.torn = true
			break
		}
		m.entries[e.Name] = e
		good += int64(nl) + 1
		buf = buf[nl+1:]
	}
	if err := m.f.Truncate(good); err != nil {
		return fmt.Errorf("ingest: truncating torn manifest: %w", err)
	}
	if _, err := m.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("ingest: manifest seek: %w", err)
	}
	return nil
}

// Torn reports whether a partial trailing record was dropped on open.
func (m *Manifest) Torn() bool { return m.torn }

// Len is the number of distinct manifested documents.
func (m *Manifest) Len() int { return len(m.entries) }

// Lookup returns the last record for a file name.
func (m *Manifest) Lookup(name string) (Entry, bool) {
	e, ok := m.entries[name]
	return e, ok
}

// Entries returns the current record per file name (insertion order not
// preserved).
func (m *Manifest) Entries() map[string]Entry {
	out := make(map[string]Entry, len(m.entries))
	for k, v := range m.entries {
		out[k] = v
	}
	return out
}

// Append durably records one document's terminal status: the record is
// written and fsynced before Append returns, making it a checkpoint a
// crashed ingest can resume from.
func (m *Manifest) Append(e Entry) error {
	if err := faultinject.Hit(FPManifestAppend); err != nil {
		return fmt.Errorf("ingest: manifest append: %w", err)
	}
	buf, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("ingest: manifest append: %w", err)
	}
	buf = append(buf, '\n')
	if _, err := m.f.Write(buf); err != nil {
		return fmt.Errorf("ingest: manifest append: %w", err)
	}
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("ingest: manifest sync: %w", err)
	}
	m.entries[e.Name] = e
	return nil
}

// Close releases the file handle.
func (m *Manifest) Close() error { return m.f.Close() }

package ingest

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cda"
	"repro/internal/ontology"
	"repro/internal/xmltree"
)

// writeTestCorpus writes n generated CDA documents into dir and
// returns their file names in sorted order.
func writeTestCorpus(t *testing.T, dir string, n int) []string {
	t.Helper()
	ont, err := ontology.Generate(ontology.GenConfig{Seed: 4, ExtraConcepts: 40})
	if err != nil {
		t.Fatal(err)
	}
	g, err := cda.NewGenerator(cda.GenConfig{
		Seed: 4, NumDocuments: n, ProblemsPerPatient: 2,
		MedicationsPerPatient: 2, ProceduresPerPatient: 1,
	}, ont)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, doc := range g.GenerateCorpus().Docs() {
		name := doc.Name + ".xml"
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := xmltree.WriteXML(f, doc.Root); err != nil {
			t.Fatal(err)
		}
		f.Close()
		names = append(names, name)
	}
	return names
}

func write(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// Generated documents must pass the structural validator — otherwise
// the pipeline would quarantine its own corpus.
func TestValidateCDAGeneratedCorpus(t *testing.T) {
	ont, err := ontology.Generate(ontology.GenConfig{Seed: 7, ExtraConcepts: 30})
	if err != nil {
		t.Fatal(err)
	}
	g, err := cda.NewGenerator(cda.GenConfig{Seed: 7, NumDocuments: 6, ProblemsPerPatient: 2,
		MedicationsPerPatient: 2, ProceduresPerPatient: 1}, ont)
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range g.GenerateCorpus().Docs() {
		if err := ValidateCDA(doc); err != nil {
			t.Errorf("%s: %v", doc.Name, err)
		}
	}
	fig1, err := cda.GenerateFigure1(ont)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateCDA(fig1); err != nil {
		t.Errorf("figure1: %v", err)
	}
}

func TestValidateCDARejects(t *testing.T) {
	cases := []struct {
		name, xml string
	}{
		{"wrong root", `<Order><id extension="1"/></Order>`},
		{"no id", `<ClinicalDocument><component/></ClinicalDocument>`},
		{"no content", `<ClinicalDocument><id extension="1"/></ClinicalDocument>`},
		{"partial ref", `<ClinicalDocument><id extension="1"/><section><code codeSystem="2.16"/>x</section></ClinicalDocument>`},
	}
	for _, c := range cases {
		doc, err := xmltree.ParseString(c.xml)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if err := ValidateCDA(doc); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// The core contract: one batch with healthy and broken documents ends
// with the healthy ones in the corpus and every broken one quarantined
// with a machine-readable reason, never a failed batch.
func TestRunQuarantinesBadDocuments(t *testing.T) {
	base := t.TempDir()
	src := filepath.Join(base, "docs")
	if err := os.Mkdir(src, 0o755); err != nil {
		t.Fatal(err)
	}
	good := writeTestCorpus(t, src, 4)
	write(t, src, "broken.xml", "<ClinicalDocument><unclosed>")
	write(t, src, "huge.xml", "<ClinicalDocument>"+strings.Repeat("x", 1<<20)+"</ClinicalDocument>")
	write(t, src, "notcda.xml", "<Order><id extension=\"1\"/>x</Order>")

	cfg := Config{
		SourceDir:   src,
		Limits:      xmltree.Limits{MaxBytes: 1 << 18, MaxDepth: 64},
		ValidateCDA: true,
		Logf:        t.Logf,
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Corpus.Len() != len(good) {
		t.Fatalf("corpus = %d docs, want %d", res.Corpus.Len(), len(good))
	}
	r := res.Report
	if r.Total != len(good)+3 || r.Ingested != len(good) || r.Quarantined != 3 || r.Resumed != 0 {
		t.Fatalf("report = %+v", r)
	}

	// Quarantined files were moved out of the source dir, with reasons.
	qdir := filepath.Join(base, "quarantine")
	for _, name := range []string{"broken.xml", "huge.xml", "notcda.xml"} {
		if _, err := os.Stat(filepath.Join(src, name)); !os.IsNotExist(err) {
			t.Errorf("%s still in source dir (err=%v)", name, err)
		}
		if _, err := os.Stat(filepath.Join(qdir, name)); err != nil {
			t.Errorf("%s not quarantined: %v", name, err)
		}
		buf, err := os.ReadFile(filepath.Join(qdir, name+".reason.json"))
		if err != nil {
			t.Fatalf("%s reason: %v", name, err)
		}
		var reason Reason
		if err := json.Unmarshal(buf, &reason); err != nil {
			t.Fatalf("%s reason not machine-readable: %v", name, err)
		}
		if reason.File != name || reason.Stage == "" || reason.Error == "" {
			t.Errorf("%s reason = %+v", name, reason)
		}
	}

	// The corpus is deterministic: same IDs as a plain sorted load.
	for i, doc := range res.Corpus.Docs() {
		if doc.Name+".xml" != good[i] {
			t.Errorf("doc %d = %s, want %s", i, doc.Name, good[i])
		}
	}
}

// A second run over an unchanged directory re-processes nothing.
func TestRunResumesFromManifest(t *testing.T) {
	base := t.TempDir()
	src := filepath.Join(base, "docs")
	if err := os.Mkdir(src, 0o755); err != nil {
		t.Fatal(err)
	}
	writeTestCorpus(t, src, 5)
	cfg := Config{SourceDir: src, ValidateCDA: true, Logf: t.Logf}

	first, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Report.Ingested != 5 || first.Report.Resumed != 0 {
		t.Fatalf("first = %+v", first.Report)
	}
	second, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Report.Ingested != 0 || second.Report.Resumed != 5 {
		t.Fatalf("second = %+v", second.Report)
	}
	if second.Corpus.Len() != 5 {
		t.Fatalf("corpus = %d", second.Corpus.Len())
	}

	// A changed file is re-validated; the rest still resume.
	docs := second.Corpus.Docs()
	write(t, src, docs[0].Name+".xml", `<ClinicalDocument><id extension="n"/><section><code code="1" codeSystem="2"/>updated</section></ClinicalDocument>`)
	third, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if third.Report.Ingested != 1 || third.Report.Resumed != 4 {
		t.Fatalf("third = %+v", third.Report)
	}
}

func TestRunContextCancel(t *testing.T) {
	base := t.TempDir()
	src := filepath.Join(base, "docs")
	if err := os.Mkdir(src, 0o755); err != nil {
		t.Fatal(err)
	}
	writeTestCorpus(t, src, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Config{SourceDir: src, Logf: t.Logf}); err == nil {
		t.Fatal("canceled run succeeded")
	}
}

func TestRunMissingSourceDir(t *testing.T) {
	if _, err := Run(context.Background(), Config{SourceDir: filepath.Join(t.TempDir(), "nope"), Logf: t.Logf}); err == nil {
		t.Fatal("missing source dir accepted")
	}
}

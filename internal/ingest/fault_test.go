package ingest

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

// A crash between documents — simulated as a manifest append that
// never happens, exactly the state a kill -9 leaves behind — aborts
// the run; the rerun resumes from the manifest and re-processes only
// the unfinished documents.
func TestCrashDuringIngestResumes(t *testing.T) {
	defer faultinject.DisableAll()
	base := t.TempDir()
	src := filepath.Join(base, "docs")
	if err := os.Mkdir(src, 0o755); err != nil {
		t.Fatal(err)
	}
	names := writeTestCorpus(t, src, 6)
	cfg := Config{SourceDir: src, ValidateCDA: true, Logf: t.Logf}

	// Crash after 3 documents reached their checkpoint.
	faultinject.Enable(FPManifestAppend, faultinject.Spec{After: 3, Count: 1})
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("crashed run reported success")
	}
	faultinject.DisableAll()

	m, err := OpenManifest(filepath.Join(base, "ingest.manifest"))
	if err != nil {
		t.Fatal(err)
	}
	checkpointed := m.Len()
	m.Close()
	if checkpointed != 3 {
		t.Fatalf("checkpointed = %d, want 3", checkpointed)
	}

	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r.Resumed != 3 {
		t.Errorf("resumed = %d, want 3 (completed documents were re-processed)", r.Resumed)
	}
	if r.Ingested != len(names)-3 {
		t.Errorf("ingested = %d, want %d", r.Ingested, len(names)-3)
	}
	if res.Corpus.Len() != len(names) {
		t.Errorf("corpus = %d, want %d", res.Corpus.Len(), len(names))
	}
}

// A crash between the quarantine checkpoint and the file move leaves
// the bad file in the source dir with a quarantined manifest record;
// the rerun finishes the move without writing a duplicate record.
func TestCrashBetweenManifestAndQuarantineMove(t *testing.T) {
	defer faultinject.DisableAll()
	base := t.TempDir()
	src := filepath.Join(base, "docs")
	if err := os.Mkdir(src, 0o755); err != nil {
		t.Fatal(err)
	}
	writeTestCorpus(t, src, 2)
	write(t, src, "bad.xml", "<ClinicalDocument><unclosed>")
	cfg := Config{SourceDir: src, ValidateCDA: true, Logf: t.Logf}

	faultinject.Enable(FPQuarantine, faultinject.Spec{})
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("run with failing quarantine move reported success")
	}
	faultinject.DisableAll()
	if _, err := os.Stat(filepath.Join(src, "bad.xml")); err != nil {
		t.Fatalf("bad.xml should still be in source dir: %v", err)
	}

	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Quarantined != 1 || res.Corpus.Len() != 2 {
		t.Fatalf("report = %+v corpus = %d", res.Report, res.Corpus.Len())
	}
	if _, err := os.Stat(filepath.Join(src, "bad.xml")); !os.IsNotExist(err) {
		t.Error("bad.xml not moved on resume")
	}
	if _, err := os.Stat(filepath.Join(base, "quarantine", "bad.xml")); err != nil {
		t.Errorf("bad.xml not in quarantine: %v", err)
	}

	// The manifest holds exactly one record for bad.xml.
	m, err := OpenManifest(filepath.Join(base, "ingest.manifest"))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if e, ok := m.Lookup("bad.xml"); !ok || e.Status != StatusQuarantined {
		t.Fatalf("bad.xml manifest = %+v ok=%v", e, ok)
	}
}

// An injected read failure quarantines the record of the file (reason
// file only) without aborting the batch; the file itself stays for the
// next run to retry.
func TestReadFailureDoesNotAbortBatch(t *testing.T) {
	defer faultinject.DisableAll()
	base := t.TempDir()
	src := filepath.Join(base, "docs")
	if err := os.Mkdir(src, 0o755); err != nil {
		t.Fatal(err)
	}
	names := writeTestCorpus(t, src, 4)
	cfg := Config{SourceDir: src, ValidateCDA: true, Logf: t.Logf}

	faultinject.Enable(FPRead, faultinject.Spec{After: 1, Count: 1})
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Quarantined != 1 || res.Corpus.Len() != len(names)-1 {
		t.Fatalf("report = %+v corpus = %d", res.Report, res.Corpus.Len())
	}
	faultinject.DisableAll()

	// Retry run: the unreadable file is healthy now, so it is ingested;
	// its earlier quarantined record is superseded.
	res2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Corpus.Len() != len(names) || res2.Report.Ingested != 1 || res2.Report.Resumed != len(names)-1 {
		t.Fatalf("retry report = %+v corpus = %d", res2.Report, res2.Corpus.Len())
	}
}

// An injected validation failure sends a healthy document through the
// quarantine path (exercising the full reject machinery on real CDA
// content).
func TestInjectedValidationFailure(t *testing.T) {
	defer faultinject.DisableAll()
	base := t.TempDir()
	src := filepath.Join(base, "docs")
	if err := os.Mkdir(src, 0o755); err != nil {
		t.Fatal(err)
	}
	names := writeTestCorpus(t, src, 3)
	cfg := Config{SourceDir: src, ValidateCDA: true, Logf: t.Logf}

	faultinject.Enable(FPValidate, faultinject.Spec{Count: 1})
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.DisableAll()
	if res.Report.Quarantined != 1 || res.Corpus.Len() != len(names)-1 {
		t.Fatalf("report = %+v corpus = %d", res.Report, res.Corpus.Len())
	}
	if len(res.Report.Failures) != 1 || res.Report.Failures[0].Stage != "validate" {
		t.Fatalf("failures = %+v", res.Report.Failures)
	}
}

// The full crash → resume → reingest soak: repeated crashes at every
// possible checkpoint boundary always converge to the same corpus.
func TestCrashSoakEveryBoundary(t *testing.T) {
	defer faultinject.DisableAll()
	base := t.TempDir()
	src := filepath.Join(base, "docs")
	if err := os.Mkdir(src, 0o755); err != nil {
		t.Fatal(err)
	}
	names := writeTestCorpus(t, src, 5)
	write(t, src, "zz-bad.xml", "<ClinicalDocument><unclosed>")
	cfg := Config{SourceDir: src, ValidateCDA: true, Logf: t.Logf}

	for after := int64(0); after <= int64(len(names)); after++ {
		faultinject.Enable(FPManifestAppend, faultinject.Spec{After: after, Count: 1})
		_, _ = Run(context.Background(), cfg) // may fail: simulated crash
		faultinject.DisableAll()
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Corpus.Len() != len(names) {
		t.Fatalf("corpus = %d, want %d", res.Corpus.Len(), len(names))
	}
	if res.Report.Ingested != 0 {
		t.Errorf("final run re-ingested %d documents", res.Report.Ingested)
	}
	if got := res.Report.Resumed; got != len(names) {
		t.Errorf("resumed = %d, want %d", got, len(names))
	}
}

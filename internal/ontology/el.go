package ontology

import (
	"fmt"
	"sort"
)

// The description-logic view (paper Section IV-C). Ontologies such as
// SNOMED CT live in the EL family of description logics: every concept
// is a subclass of a set of atomic concepts and existential role
// restrictions Exists r.C. A relationship r(c, e) in the ontology graph
// is read as the axiom
//
//	c  SUBCLASS-OF  Exists r.e
//
// which lets a graph with many relationship types be reduced to one
// with only is-a links, at the cost of virtual "role restriction" nodes.
// The links from a concept to a restriction, and from a restriction to
// its filler concept, are the "dotted links" of the paper's Figure 6;
// traversing a dotted link decays the flowing score by beta.
//
// The Relationships OntoScore algorithm (Section VI-C) applies the
// arithmetic of this view directly on the original graph, without
// materializing restriction nodes. ELView materializes them explicitly,
// both so that library users can inspect the logic view and so that
// tests can verify the implicit arithmetic against the explicit graph.

// RestrictionID identifies a virtual existential role restriction node
// within an ELView.
type RestrictionID int

// Restriction is the virtual node Exists r.Filler.
type Restriction struct {
	ID     RestrictionID
	Role   RelType
	Filler ConceptID
}

// ELView is the materialized description-logic view of an ontology: the
// original concepts plus one restriction node per (role, filler) pair
// occurring in the graph.
type ELView struct {
	ont *Ontology

	restrictions []Restriction
	byPair       map[restrictionKey]RestrictionID

	// subjects[rid] lists the concepts c with role(c, filler) — the
	// "subclasses" of the restriction node in the DL view.
	subjects map[RestrictionID][]ConceptID
	// ofConcept[c] lists the restrictions c is a subclass of.
	ofConcept map[ConceptID][]RestrictionID
	// fillerOf[e] lists the restrictions whose filler is e.
	fillerOf map[ConceptID][]RestrictionID
}

type restrictionKey struct {
	role   RelType
	filler ConceptID
}

// NewELView builds the description-logic view of o. Every non-is-a edge
// r(c, e) contributes the restriction Exists r.e (shared across all
// subjects c with the same role and filler).
func NewELView(o *Ontology) *ELView {
	v := &ELView{
		ont:       o,
		byPair:    make(map[restrictionKey]RestrictionID),
		subjects:  make(map[RestrictionID][]ConceptID),
		ofConcept: make(map[ConceptID][]RestrictionID),
		fillerOf:  make(map[ConceptID][]RestrictionID),
	}
	for _, c := range o.Concepts() {
		for _, e := range o.Out(c) {
			if e.Type == IsA {
				continue
			}
			key := restrictionKey{role: e.Type, filler: e.To}
			rid, ok := v.byPair[key]
			if !ok {
				rid = RestrictionID(len(v.restrictions))
				v.restrictions = append(v.restrictions, Restriction{
					ID: rid, Role: e.Type, Filler: e.To,
				})
				v.byPair[key] = rid
				v.fillerOf[e.To] = append(v.fillerOf[e.To], rid)
			}
			v.subjects[rid] = append(v.subjects[rid], c)
			v.ofConcept[c] = append(v.ofConcept[c], rid)
		}
	}
	for rid := range v.subjects {
		s := v.subjects[rid]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	return v
}

// Restrictions returns all restriction nodes of the view.
func (v *ELView) Restrictions() []Restriction { return v.restrictions }

// Restriction returns the restriction with the given ID.
func (v *ELView) Restriction(id RestrictionID) (Restriction, bool) {
	if int(id) < 0 || int(id) >= len(v.restrictions) {
		return Restriction{}, false
	}
	return v.restrictions[id], true
}

// Lookup finds the restriction node Exists role.filler, if any edge of
// that shape exists in the ontology.
func (v *ELView) Lookup(role RelType, filler ConceptID) (RestrictionID, bool) {
	rid, ok := v.byPair[restrictionKey{role: role, filler: filler}]
	return rid, ok
}

// Subjects returns the concepts that are subclasses of the restriction —
// the concepts c with role(c, filler).
func (v *ELView) Subjects(id RestrictionID) []ConceptID { return v.subjects[id] }

// RestrictionsOf returns the restrictions concept c is a subclass of.
func (v *ELView) RestrictionsOf(c ConceptID) []RestrictionID { return v.ofConcept[c] }

// RestrictionsWithFiller returns the restrictions whose filler is e.
func (v *ELView) RestrictionsWithFiller(e ConceptID) []RestrictionID { return v.fillerOf[e] }

// InDegree is the number of subjects of the restriction — the
// denominator of the Relationships strategy's flow normalization
// (paper: "the denominator is the in-degree of the existential role
// restriction").
func (v *ELView) InDegree(id RestrictionID) int { return len(v.subjects[id]) }

// SyntacticName renders the restriction's synthetic concept name, used
// so that an IR score can be computed even for restriction nodes
// (paper: "Exists_r_C", e.g. "Exists finding site of Bronchial
// Structure").
func (v *ELView) SyntacticName(id RestrictionID) string {
	r, ok := v.Restriction(id)
	if !ok {
		return ""
	}
	filler := v.ont.Concept(r.Filler)
	fillerName := fmt.Sprintf("concept-%d", r.Filler)
	if filler != nil {
		fillerName = filler.Preferred
	}
	return "Exists " + string(r.Role) + " " + fillerName
}

// Axioms renders the subclass axioms of the view in a stable textual
// form, one per (subject, restriction) pair, e.g.
//
//	Asthma Attack SUBCLASS-OF Exists finding-site-of Bronchial Structure
//
// Useful for the ontology_explore example and for documentation tests.
func (v *ELView) Axioms() []string {
	var out []string
	for _, r := range v.restrictions {
		name := v.SyntacticName(r.ID)
		for _, subj := range v.subjects[r.ID] {
			c := v.ont.Concept(subj)
			subjName := fmt.Sprintf("concept-%d", subj)
			if c != nil {
				subjName = c.Preferred
			}
			out = append(out, subjName+" SUBCLASS-OF "+name)
		}
	}
	sort.Strings(out)
	return out
}

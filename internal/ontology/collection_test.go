package ontology

import (
	"testing"
)

func TestNewCollectionErrors(t *testing.T) {
	if _, err := NewCollection(nil); err == nil {
		t.Error("nil ontology accepted")
	}
	a := Figure2Fragment()
	b := Figure2Fragment()
	if _, err := NewCollection(a, b); err == nil {
		t.Error("duplicate system id accepted")
	}
	empty := New("", "anonymous")
	if _, err := NewCollection(empty); err == nil {
		t.Error("empty system id accepted")
	}
}

func TestCollectionLookup(t *testing.T) {
	snomed := Figure2Fragment()
	loinc := LOINCFragment()
	c := MustCollection(snomed, loinc)
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.Systems(); got[0] != SNOMEDSystemID || got[1] != LOINCSystemID {
		t.Errorf("Systems = %v", got)
	}
	if o, ok := c.System(LOINCSystemID); !ok || o != loinc {
		t.Error("System lookup failed")
	}
	if _, ok := c.System("unknown"); ok {
		t.Error("unknown system resolved")
	}
	onts := c.Ontologies()
	if len(onts) != 2 || onts[0] != snomed {
		t.Error("Ontologies order wrong")
	}
}

func TestCollectionResolve(t *testing.T) {
	c := MustCollection(Figure2Fragment(), LOINCFragment())
	o, con, ok := c.Resolve(SNOMEDSystemID, CodeAsthma)
	if !ok || con.Preferred != "Asthma" || o.SystemID != SNOMEDSystemID {
		t.Errorf("Resolve SNOMED: %v %v %v", o, con, ok)
	}
	_, con, ok = c.Resolve(LOINCSystemID, "10160-0")
	if !ok || con.Preferred != "History of medication use" {
		t.Errorf("Resolve LOINC: %v %v", con, ok)
	}
	if _, _, ok := c.Resolve(SNOMEDSystemID, "10160-0"); ok {
		t.Error("LOINC code resolved against SNOMED")
	}
	if _, _, ok := c.Resolve("nope", CodeAsthma); ok {
		t.Error("unknown system resolved")
	}
}

func TestCollectionVocabulary(t *testing.T) {
	c := MustCollection(Figure2Fragment(), LOINCFragment())
	vocab := c.Vocabulary()
	want := map[string]bool{"asthma": false, "hospital": false, "vital": false}
	for _, tok := range vocab {
		if _, tracked := want[tok]; tracked {
			want[tok] = true
		}
	}
	for tok, seen := range want {
		if !seen {
			t.Errorf("cross-system vocabulary missing %q", tok)
		}
	}
	for i := 1; i < len(vocab); i++ {
		if vocab[i-1] >= vocab[i] {
			t.Fatal("vocabulary not sorted")
		}
	}
}

func TestLOINCFragmentShape(t *testing.T) {
	o := LOINCFragment()
	if o.SystemID != LOINCSystemID {
		t.Errorf("system id = %q", o.SystemID)
	}
	if err := o.ValidateTaxonomy(); err != nil {
		t.Fatal(err)
	}
	meds, ok := o.ByCode("10160-0")
	if !ok {
		t.Fatal("medication section code missing")
	}
	// Sections are part-of the summary panel.
	found := false
	for _, e := range o.Out(meds.ID) {
		if e.Type == PartOf {
			found = true
		}
	}
	if !found {
		t.Error("panel membership missing")
	}
	if got := o.ConceptsContaining("medication"); len(got) == 0 {
		t.Error("term lookup broken")
	}
}

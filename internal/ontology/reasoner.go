package ontology

import "sort"

// An EL completion-rule reasoner. The paper grounds the Relationships
// strategy in the EL family of description logics (Section IV-C, citing
// Baader/Lutz/Suntisrivaraporn's "Efficient Reasoning in EL+"): SNOMED
// CT is an EL TBox whose axioms have the forms
//
//	A ⊑ B          (is-a edges)
//	A ⊑ ∃r.B       (attribute relationships)
//	∃r.B ⊑ A       (domain-style axioms; expressible via the API)
//
// The Reasoner classifies such a TBox with the standard completion
// rules, computing for every atomic concept its full subsumer set and
// its entailed existential restrictions — including those only
// derivable by combining axioms, e.g. from
//
//	Asthma attack ⊑ Asthma and Asthma ⊑ ∃treated-by.Theophylline
//
// it derives Asthma attack ⊑ ∃treated-by.Theophylline, which plain
// graph reachability over typed edges does not represent.
//
// This gives library users sound subsumption ("is every asthma attack a
// disorder of thorax?") and entailed-role queries ("what is an asthma
// attack treated by?") over the same data the search strategies use.

// Axiom is one EL TBox axiom in normal form.
type Axiom struct {
	// Sub ⊑ Sup when Role == ""; otherwise the axiom involves ∃Role.
	Sub  ConceptID
	Sup  ConceptID
	Role RelType
	// Kind selects the normal form.
	Kind AxiomKind
}

// AxiomKind enumerates the supported normal forms.
type AxiomKind int

const (
	// SubClass: Sub ⊑ Sup.
	SubClass AxiomKind = iota
	// SubExistential: Sub ⊑ ∃Role.Sup.
	SubExistential
	// ExistentialSub: ∃Role.Sub ⊑ Sup.
	ExistentialSub
)

// Reasoner computes the classification of an EL TBox.
type Reasoner struct {
	// subsumers[c] = set of atomic concepts subsuming c (including c).
	subsumers map[ConceptID]map[ConceptID]bool
	// roles[r][c] = set of fillers d with c ⊑ ∃r.d entailed.
	roles map[RelType]map[ConceptID]map[ConceptID]bool
}

// NewReasoner extracts the TBox from the ontology graph (is-a edges as
// SubClass axioms, attribute edges as SubExistential axioms), adds the
// extra axioms, and saturates with the EL completion rules.
func NewReasoner(o *Ontology, extra ...Axiom) *Reasoner {
	var axioms []Axiom
	for _, c := range o.Concepts() {
		for _, e := range o.Out(c) {
			if e.Type == IsA {
				axioms = append(axioms, Axiom{Sub: c, Sup: e.To, Kind: SubClass})
			} else {
				axioms = append(axioms, Axiom{Sub: c, Sup: e.To, Role: e.Type, Kind: SubExistential})
			}
		}
	}
	axioms = append(axioms, extra...)
	return saturate(o.Concepts(), axioms)
}

// saturate runs the completion rules to fixpoint:
//
//	CR1: D ∈ S(C), (D ⊑ E)        ⇒ E ∈ S(C)
//	CR3: D ∈ S(C), (D ⊑ ∃r.E)     ⇒ (C, E) ∈ R(r)
//	CR4: (C, D) ∈ R(r), E ∈ S(D),
//	     (∃r.E ⊑ F)               ⇒ F ∈ S(C)
func saturate(concepts []ConceptID, axioms []Axiom) *Reasoner {
	r := &Reasoner{
		subsumers: make(map[ConceptID]map[ConceptID]bool, len(concepts)),
		roles:     make(map[RelType]map[ConceptID]map[ConceptID]bool),
	}
	for _, c := range concepts {
		r.subsumers[c] = map[ConceptID]bool{c: true}
	}
	// Axiom indexes by left-hand side.
	subClass := make(map[ConceptID][]ConceptID)
	subExist := make(map[ConceptID][]Axiom)
	existSub := make(map[RelType]map[ConceptID][]ConceptID)
	for _, ax := range axioms {
		switch ax.Kind {
		case SubClass:
			subClass[ax.Sub] = append(subClass[ax.Sub], ax.Sup)
		case SubExistential:
			subExist[ax.Sub] = append(subExist[ax.Sub], ax)
		case ExistentialSub:
			m := existSub[ax.Role]
			if m == nil {
				m = make(map[ConceptID][]ConceptID)
				existSub[ax.Role] = m
			}
			m[ax.Sub] = append(m[ax.Sub], ax.Sup)
		}
	}

	addSubsumer := func(c, d ConceptID) bool {
		s := r.subsumers[c]
		if s == nil {
			s = map[ConceptID]bool{c: true}
			r.subsumers[c] = s
		}
		if s[d] {
			return false
		}
		s[d] = true
		return true
	}
	addRole := func(role RelType, c, d ConceptID) bool {
		m := r.roles[role]
		if m == nil {
			m = make(map[ConceptID]map[ConceptID]bool)
			r.roles[role] = m
		}
		fillers := m[c]
		if fillers == nil {
			fillers = make(map[ConceptID]bool)
			m[c] = fillers
		}
		if fillers[d] {
			return false
		}
		fillers[d] = true
		return true
	}

	// Naive fixpoint iteration: apply every rule until nothing changes.
	// SNOMED-scale TBoxes would want the queue-based CEL algorithm; at
	// our ontology sizes the fixpoint converges in a few passes.
	for changed := true; changed; {
		changed = false
		// CR1 + CR3.
		for c, s := range r.subsumers {
			for d := range s {
				for _, e := range subClass[d] {
					if addSubsumer(c, e) {
						changed = true
					}
				}
				for _, ax := range subExist[d] {
					if addRole(ax.Role, c, ax.Sup) {
						changed = true
					}
				}
			}
		}
		// CR4.
		for role, pairs := range r.roles {
			lhs := existSub[role]
			if lhs == nil {
				continue
			}
			for c, fillers := range pairs {
				for d := range fillers {
					for e := range r.subsumers[d] {
						for _, f := range lhs[e] {
							if addSubsumer(c, f) {
								changed = true
							}
						}
					}
				}
			}
		}
	}
	return r
}

// Subsumes reports whether sup subsumes sub (every sub is a sup),
// including sub == sup.
func (r *Reasoner) Subsumes(sup, sub ConceptID) bool {
	return r.subsumers[sub][sup]
}

// Subsumers returns every atomic concept subsuming c (including c),
// sorted.
func (r *Reasoner) Subsumers(c ConceptID) []ConceptID {
	out := make([]ConceptID, 0, len(r.subsumers[c]))
	for d := range r.subsumers[c] {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Fillers returns every concept d with c ⊑ ∃role.d entailed, sorted.
// This includes restrictions inherited through the subsumption
// hierarchy, not just the graph's direct edges.
func (r *Reasoner) Fillers(c ConceptID, role RelType) []ConceptID {
	fillers := r.roles[role][c]
	out := make([]ConceptID, 0, len(fillers))
	for d := range fillers {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EntailedRoles lists the role types with at least one entailed
// restriction for c, sorted.
func (r *Reasoner) EntailedRoles(c ConceptID) []RelType {
	var out []RelType
	for role, pairs := range r.roles {
		if len(pairs[c]) > 0 {
			out = append(out, role)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

package ontology

// LOINCSystemID is the HL7 OID by which CDA documents reference LOINC
// codes (section and observation codes in the paper's Figure 1).
const LOINCSystemID = "2.16.840.1.113883.6.1"

// LOINCFragment builds a small LOINC-like ontology covering the
// document-section panel codes the CDA generator emits. The paper's
// problem definition (Section III) allows a *collection* of ontological
// systems O = {O1..Ok}; CDA documents reference both SNOMED CT (clinical
// codes) and LOINC (section codes), so a faithful system must resolve
// references against more than one ontology. LOINC is shallow —
// panels containing document-section codes — which this fragment
// mirrors.
func LOINCFragment() *Ontology {
	o := New(LOINCSystemID, "LOINC")
	root := o.MustAddConcept("LP0", "LOINC term")
	docOnt := o.MustAddConcept("LP7787-7", "Document ontology", "Clinical document sections")
	panels := o.MustAddConcept("LP29693-6", "Panels", "Order set panel")
	o.MustAddRelationship(docOnt, root, IsA)
	o.MustAddRelationship(panels, root, IsA)

	section := func(code, name string, synonyms ...string) ConceptID {
		id := o.MustAddConcept(code, name, synonyms...)
		o.MustAddRelationship(id, docOnt, IsA)
		return id
	}
	meds := section("10160-0", "History of medication use", "Medication use narrative")
	problems := section("11450-4", "Problem list", "Problem list reported")
	exam := section("29545-1", "Physical findings", "Physical examination narrative")
	vitals := section("8716-3", "Vital signs", "Vital signs measurements")
	procs := section("47519-4", "History of procedures", "Procedure narrative")
	course := section("8648-8", "Hospital course", "Hospital course narrative")

	// Panel memberships give the fragment a second relationship type so
	// the Graph/Relationships strategies have non-taxonomic edges to
	// traverse within LOINC too.
	summary := o.MustAddConcept("34133-9", "Summarization of episode note", "Continuity of care document")
	o.MustAddRelationship(summary, panels, IsA)
	for _, sec := range []ConceptID{meds, problems, exam, vitals, procs, course} {
		o.MustAddRelationship(sec, summary, PartOf)
	}
	return o
}

package ontology

import (
	"strings"
	"testing"
)

func TestELViewRestrictionsShared(t *testing.T) {
	o := Figure2Fragment()
	v := NewELView(o)
	bronchial := o.ByPreferred("Bronchial structure").ID
	rid, ok := v.Lookup(FindingSiteOf, bronchial)
	if !ok {
		t.Fatal("Exists finding-site-of.Bronchial structure missing")
	}
	// Asthma, Asthma attack, Bronchitis share the same restriction node.
	if got := v.InDegree(rid); got != 3 {
		t.Errorf("InDegree = %d, want 3", got)
	}
	subs := v.Subjects(rid)
	names := map[string]bool{}
	for _, s := range subs {
		names[o.Concept(s).Preferred] = true
	}
	for _, want := range []string{"Asthma", "Asthma attack", "Bronchitis"} {
		if !names[want] {
			t.Errorf("subject %q missing (have %v)", want, names)
		}
	}
}

func TestELViewSyntacticName(t *testing.T) {
	o := Figure2Fragment()
	v := NewELView(o)
	bronchial := o.ByPreferred("Bronchial structure").ID
	rid, _ := v.Lookup(FindingSiteOf, bronchial)
	name := v.SyntacticName(rid)
	if name != "Exists finding-site-of Bronchial structure" {
		t.Errorf("SyntacticName = %q", name)
	}
	if v.SyntacticName(RestrictionID(9999)) != "" {
		t.Error("out-of-range restriction should yield empty name")
	}
}

func TestELViewNoIsAEdges(t *testing.T) {
	o := Figure2Fragment()
	v := NewELView(o)
	for _, r := range v.Restrictions() {
		if r.Role == IsA {
			t.Fatalf("is-a edge materialized as restriction: %+v", r)
		}
	}
}

func TestELViewRestrictionsOfAndFiller(t *testing.T) {
	o := Figure2Fragment()
	v := NewELView(o)
	asthma := o.ByPreferred("Asthma").ID
	rids := v.RestrictionsOf(asthma)
	// Asthma: finding-site-of bronchial, treated-by theophylline,
	// treated-by albuterol.
	if len(rids) != 3 {
		t.Fatalf("RestrictionsOf(Asthma) = %d restrictions, want 3", len(rids))
	}
	theo := o.ByPreferred("Theophylline").ID
	fr := v.RestrictionsWithFiller(theo)
	if len(fr) != 1 {
		t.Fatalf("RestrictionsWithFiller(Theophylline) = %d, want 1", len(fr))
	}
	r, ok := v.Restriction(fr[0])
	if !ok || r.Role != TreatedBy || r.Filler != theo {
		t.Errorf("restriction = %+v", r)
	}
	if _, ok := v.Restriction(RestrictionID(-1)); ok {
		t.Error("negative restriction id resolved")
	}
}

func TestELViewAxioms(t *testing.T) {
	o := Figure2Fragment()
	v := NewELView(o)
	axioms := v.Axioms()
	want := "Asthma attack SUBCLASS-OF Exists finding-site-of Bronchial structure"
	found := false
	for _, a := range axioms {
		if a == want {
			found = true
		}
	}
	if !found {
		t.Errorf("axiom %q missing; axioms:\n%s", want, strings.Join(axioms, "\n"))
	}
	// Sorted.
	for i := 1; i < len(axioms); i++ {
		if axioms[i-1] > axioms[i] {
			t.Fatal("axioms not sorted")
		}
	}
}

func TestELViewEmptyOntology(t *testing.T) {
	o := New("s", "empty")
	v := NewELView(o)
	if len(v.Restrictions()) != 0 {
		t.Error("empty ontology produced restrictions")
	}
}

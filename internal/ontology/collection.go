package ontology

import (
	"fmt"
	"sort"
)

// Collection is the ontological-systems collection O = {O1..Ok} of the
// paper's Section III: the set of ontologies referenced by code nodes
// of a document corpus, addressed by system identifier.
type Collection struct {
	bySystem map[string]*Ontology
	order    []string
}

// NewCollection builds a collection from the given ontologies. Duplicate
// system identifiers are an error.
func NewCollection(onts ...*Ontology) (*Collection, error) {
	c := &Collection{bySystem: make(map[string]*Ontology, len(onts))}
	for _, o := range onts {
		if o == nil {
			return nil, fmt.Errorf("ontology: nil ontology in collection")
		}
		if o.SystemID == "" {
			return nil, fmt.Errorf("ontology: ontology %q has empty system id", o.Name)
		}
		if _, dup := c.bySystem[o.SystemID]; dup {
			return nil, fmt.Errorf("ontology: duplicate system id %q", o.SystemID)
		}
		c.bySystem[o.SystemID] = o
		c.order = append(c.order, o.SystemID)
	}
	return c, nil
}

// MustCollection is NewCollection panicking on error, for
// program-controlled inputs.
func MustCollection(onts ...*Ontology) *Collection {
	c, err := NewCollection(onts...)
	if err != nil {
		panic(err)
	}
	return c
}

// System returns the ontology with the given system identifier.
func (c *Collection) System(id string) (*Ontology, bool) {
	o, ok := c.bySystem[id]
	return o, ok
}

// Systems returns the system identifiers in insertion order.
func (c *Collection) Systems() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Ontologies returns the member ontologies in insertion order.
func (c *Collection) Ontologies() []*Ontology {
	out := make([]*Ontology, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.bySystem[id])
	}
	return out
}

// Len is the number of member ontologies.
func (c *Collection) Len() int { return len(c.order) }

// Resolve is the fO function of the paper's equation (5): it maps an
// ontological reference (system code + concept code) to the concept
// node it names, across all systems of the collection.
func (c *Collection) Resolve(system, code string) (*Ontology, *Concept, bool) {
	o, ok := c.bySystem[system]
	if !ok {
		return nil, nil, false
	}
	con, ok := o.ByCode(code)
	if !ok {
		return nil, nil, false
	}
	return o, con, true
}

// Vocabulary returns the union of the member ontologies' term tokens,
// sorted — the cross-system keyword universe of Section V-B.
func (c *Collection) Vocabulary() []string {
	set := make(map[string]bool)
	for _, o := range c.Ontologies() {
		for _, tok := range o.Vocabulary() {
			set[tok] = true
		}
	}
	out := make([]string, 0, len(set))
	for tok := range set {
		out = append(out, tok)
	}
	sort.Strings(out)
	return out
}

package ontology

import (
	"strings"
	"testing"
)

func mustFragment(t *testing.T) *Ontology {
	t.Helper()
	return Figure2Fragment()
}

func conceptByPref(t *testing.T, o *Ontology, pref string) *Concept {
	t.Helper()
	c := o.ByPreferred(pref)
	if c == nil {
		t.Fatalf("concept %q not found", pref)
	}
	return c
}

func TestAddConceptErrors(t *testing.T) {
	o := New("sys", "test")
	if _, err := o.AddConcept("", "x"); err == nil {
		t.Error("empty code accepted")
	}
	if _, err := o.AddConcept("1", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AddConcept("1", "y"); err == nil {
		t.Error("duplicate code accepted")
	}
}

func TestAddRelationshipErrors(t *testing.T) {
	o := New("sys", "test")
	a, _ := o.AddConcept("a", "A")
	b, _ := o.AddConcept("b", "B")
	if err := o.AddRelationship(a, 999, IsA); err == nil {
		t.Error("unknown target accepted")
	}
	if err := o.AddRelationship(999, a, IsA); err == nil {
		t.Error("unknown source accepted")
	}
	if err := o.AddRelationship(a, a, IsA); err == nil {
		t.Error("self edge accepted")
	}
	if err := o.AddRelationship(a, b, IsA); err != nil {
		t.Fatal(err)
	}
	// Idempotent duplicate.
	if err := o.AddRelationship(a, b, IsA); err != nil {
		t.Fatal(err)
	}
	if got := o.NumRelationships(); got != 1 {
		t.Errorf("duplicate edge stored: %d relationships", got)
	}
}

func TestByCodeAndTerms(t *testing.T) {
	o := mustFragment(t)
	c, ok := o.ByCode(CodeAsthma)
	if !ok || c.Preferred != "Asthma" {
		t.Fatalf("ByCode(%s) = %+v, %v", CodeAsthma, c, ok)
	}
	if _, ok := o.ByCode("nope"); ok {
		t.Error("unknown code resolved")
	}
	terms := c.Terms()
	if len(terms) != 2 || terms[0] != "Asthma" || terms[1] != "Bronchial asthma" {
		t.Errorf("Terms = %v", terms)
	}
	if got := o.TermText(c.ID); !strings.Contains(got, "Bronchial asthma") {
		t.Errorf("TermText = %q", got)
	}
	if o.TermText(999999) != "" {
		t.Error("TermText of unknown concept should be empty")
	}
}

func TestTaxonomyQueries(t *testing.T) {
	o := mustFragment(t)
	asthma := conceptByPref(t, o, "Asthma").ID
	disBronchus := conceptByPref(t, o, "Disorder of bronchus").ID
	disThorax := conceptByPref(t, o, "Disorder of thorax").ID
	attack := conceptByPref(t, o, "Asthma attack").ID

	if !o.IsSuperclassOf(disBronchus, asthma) {
		t.Error("Disorder of bronchus should be a superclass of Asthma")
	}
	if !o.IsSuperclassOf(disThorax, attack) {
		t.Error("transitive superclass not detected")
	}
	if o.IsSuperclassOf(asthma, disBronchus) {
		t.Error("superclass direction inverted")
	}
	if o.IsSuperclassOf(asthma, asthma) {
		t.Error("a concept is not its own proper superclass")
	}
	// Asthma: Asthma attack + 5 synthetic subclasses.
	if got := o.NumSubclasses(asthma); got != 6 {
		t.Errorf("NumSubclasses(Asthma) = %d, want 6", got)
	}
	anc := o.Ancestors(attack)
	if len(anc) < 4 {
		t.Errorf("Ancestors(Asthma attack) = %v", anc)
	}
	desc := o.DescendantsOf(disBronchus)
	found := false
	for _, d := range desc {
		if d == attack {
			found = true
		}
	}
	if !found {
		t.Error("Asthma attack missing from descendants of Disorder of bronchus")
	}
}

func TestValidateTaxonomy(t *testing.T) {
	o := mustFragment(t)
	if err := o.ValidateTaxonomy(); err != nil {
		t.Fatalf("fragment taxonomy invalid: %v", err)
	}
	// Introduce a cycle a -> b -> c -> a.
	a, _ := o.AddConcept("cyc-a", "CycA")
	b, _ := o.AddConcept("cyc-b", "CycB")
	cc, _ := o.AddConcept("cyc-c", "CycC")
	o.MustAddRelationship(a, b, IsA)
	o.MustAddRelationship(b, cc, IsA)
	o.MustAddRelationship(cc, a, IsA)
	if err := o.ValidateTaxonomy(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestNeighborsUndirected(t *testing.T) {
	o := mustFragment(t)
	asthma := conceptByPref(t, o, "Asthma").ID
	bronchial := conceptByPref(t, o, "Bronchial structure").ID
	nb := o.Neighbors(asthma)
	has := func(id ConceptID) bool {
		for _, n := range nb {
			if n == id {
				return true
			}
		}
		return false
	}
	if !has(bronchial) {
		t.Error("finding-site-of neighbor missing from undirected view")
	}
	// Reverse direction too.
	nbB := o.Neighbors(bronchial)
	foundAsthma := false
	for _, n := range nbB {
		if n == asthma {
			foundAsthma = true
		}
	}
	if !foundAsthma {
		t.Error("incoming edge missing from undirected view")
	}
}

func TestDegrees(t *testing.T) {
	o := mustFragment(t)
	bronchial := conceptByPref(t, o, "Bronchial structure").ID
	// Asthma, Asthma attack and Bronchitis all have finding-site-of ->
	// bronchial structure.
	if got := o.InDegree(bronchial, FindingSiteOf); got != 3 {
		t.Errorf("InDegree(bronchial, finding-site-of) = %d, want 3", got)
	}
	asthma := conceptByPref(t, o, "Asthma").ID
	if got := o.OutDegree(asthma, TreatedBy); got != 2 {
		t.Errorf("OutDegree(asthma, treated-by) = %d, want 2", got)
	}
}

func TestDistances(t *testing.T) {
	o := mustFragment(t)
	asthma := conceptByPref(t, o, "Asthma").ID
	attack := conceptByPref(t, o, "Asthma attack").ID
	bronchial := conceptByPref(t, o, "Bronchial structure").ID
	if d := o.TaxonomicDistance(asthma, attack); d != 1 {
		t.Errorf("taxonomic distance asthma<->attack = %d", d)
	}
	if d := o.TaxonomicDistance(asthma, asthma); d != 0 {
		t.Errorf("self distance = %d", d)
	}
	if d := o.GraphDistance(attack, bronchial); d != 1 {
		t.Errorf("graph distance attack<->bronchial = %d (finding-site-of edge)", d)
	}
	// Taxonomic distance ignores attribute edges: asthma->bronchial has
	// no is-a path shorter than via the shared root.
	td := o.TaxonomicDistance(asthma, bronchial)
	gd := o.GraphDistance(asthma, bronchial)
	if gd != 1 {
		t.Errorf("graph distance = %d, want 1", gd)
	}
	if td <= gd {
		t.Errorf("taxonomic distance %d should exceed graph distance %d", td, gd)
	}
	// Disconnected pair.
	iso, _ := o.AddConcept("island", "Island concept")
	if d := o.GraphDistance(iso, asthma); d != -1 {
		t.Errorf("disconnected distance = %d, want -1", d)
	}
}

func TestRootsAndRelTypes(t *testing.T) {
	o := mustFragment(t)
	roots := o.Roots()
	if len(roots) != 1 {
		t.Fatalf("fragment should have one root, got %d", len(roots))
	}
	if o.Concept(roots[0]).Preferred != "SNOMED CT Concept" {
		t.Errorf("root = %q", o.Concept(roots[0]).Preferred)
	}
	types := o.RelTypes()
	want := map[RelType]bool{IsA: true, FindingSiteOf: true, TreatedBy: true, PartOf: true}
	for _, tt := range types {
		delete(want, tt)
	}
	if len(want) != 0 {
		t.Errorf("missing relationship types: %v (got %v)", want, types)
	}
}

package ontology

import (
	"reflect"
	"sort"
	"testing"
)

func frozenFixture(t *testing.T) (*Ontology, *Frozen) {
	t.Helper()
	o, err := Generate(GenConfig{
		Seed: 21, ExtraConcepts: 200, SynonymProb: 0.3,
		MultiParentProb: 0.2, RelationshipsPerDisorder: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return o, Freeze(o)
}

func sortedIDs(ids []ConceptID) []ConceptID {
	out := append([]ConceptID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedEdges(es []Edge) []Edge {
	out := append([]Edge(nil), es...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return out[i].Type < out[j].Type
	})
	return out
}

// Property: every accessor of the frozen snapshot agrees with the
// map-backed ontology on every concept.
func TestFrozenEquivalence(t *testing.T) {
	o, f := frozenFixture(t)
	if f.Len() != o.Len() {
		t.Fatalf("Len: %d vs %d", f.Len(), o.Len())
	}
	if f.Ontology() != o {
		t.Fatal("source ontology lost")
	}
	for _, id := range o.Concepts() {
		if got, want := sortedIDs(f.Neighbors(id)), sortedIDs(o.Neighbors(id)); !reflect.DeepEqual(got, want) {
			t.Fatalf("Neighbors(%d): %v vs %v", id, got, want)
		}
		if got, want := sortedIDs(f.Superclasses(id)), sortedIDs(o.Superclasses(id)); !reflect.DeepEqual(got, want) {
			t.Fatalf("Superclasses(%d): %v vs %v", id, got, want)
		}
		if got, want := sortedIDs(f.Subclasses(id)), sortedIDs(o.Subclasses(id)); !reflect.DeepEqual(got, want) {
			t.Fatalf("Subclasses(%d): %v vs %v", id, got, want)
		}
		if f.NumSubclasses(id) != o.NumSubclasses(id) {
			t.Fatalf("NumSubclasses(%d)", id)
		}
		if got, want := sortedEdges(f.Out(id)), sortedEdges(o.Out(id)); !reflect.DeepEqual(got, want) {
			t.Fatalf("Out(%d): %v vs %v", id, got, want)
		}
		if got, want := sortedEdges(f.In(id)), sortedEdges(o.In(id)); !reflect.DeepEqual(got, want) {
			t.Fatalf("In(%d): %v vs %v", id, got, want)
		}
		for _, tt := range o.RelTypes() {
			if f.InDegree(id, tt) != o.InDegree(id, tt) {
				t.Fatalf("InDegree(%d, %s): %d vs %d", id, tt, f.InDegree(id, tt), o.InDegree(id, tt))
			}
		}
	}
}

func TestFrozenUnknownConcept(t *testing.T) {
	_, f := frozenFixture(t)
	const bogus = ConceptID(1 << 40)
	if f.Neighbors(bogus) != nil || f.Superclasses(bogus) != nil ||
		f.Subclasses(bogus) != nil || f.Out(bogus) != nil || f.In(bogus) != nil {
		t.Error("unknown concept returned adjacency")
	}
	if f.NumSubclasses(bogus) != 0 || f.InDegree(bogus, IsA) != 0 {
		t.Error("unknown concept has degree")
	}
}

func TestFrozenIsSnapshot(t *testing.T) {
	o := Figure2Fragment()
	f := Freeze(o)
	asthma := o.ByPreferred("Asthma").ID
	before := len(f.Neighbors(asthma))
	extra := o.MustAddConcept("snapshot-extra", "Snapshot extra")
	o.MustAddRelationship(extra, asthma, AssociatedWith)
	if got := len(f.Neighbors(asthma)); got != before {
		t.Errorf("frozen snapshot reflected mutation: %d -> %d", before, got)
	}
	if got := len(o.Neighbors(asthma)); got != before+1 {
		t.Errorf("live ontology missed mutation: %d", got)
	}
}

func BenchmarkNeighborsMapBacked(b *testing.B) {
	o, _ := frozenFixtureBench(b)
	ids := o.Concepts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, id := range ids {
			total += len(o.Neighbors(id))
		}
		if total == 0 {
			b.Fatal("no edges")
		}
	}
}

func BenchmarkNeighborsFrozen(b *testing.B) {
	o, f := frozenFixtureBench(b)
	ids := o.Concepts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, id := range ids {
			total += len(f.Neighbors(id))
		}
		if total == 0 {
			b.Fatal("no edges")
		}
	}
}

func frozenFixtureBench(b *testing.B) (*Ontology, *Frozen) {
	b.Helper()
	o, err := Generate(GenConfig{
		Seed: 21, ExtraConcepts: 500, SynonymProb: 0.3,
		MultiParentProb: 0.2, RelationshipsPerDisorder: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	return o, Freeze(o)
}

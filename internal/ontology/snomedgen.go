package ontology

import (
	"fmt"
	"math"
	"math/rand"
)

// GenConfig configures the synthetic SNOMED-like ontology generator.
// The generator always embeds the curated Figure-2 respiratory fragment
// and the pediatric-cardiology core, then grows them with synthetic
// concepts mimicking SNOMED CT's shape: a deep is-a DAG (multi-parent),
// multi-word terms with synonyms, and typed attribute relationships
// between the clinical-finding, body-structure and product axes.
type GenConfig struct {
	// Seed makes the generated ontology deterministic.
	Seed int64
	// ExtraConcepts is the number of synthetic concepts added on top of
	// the curated cores; they are split ~50% disorders, ~25% structures,
	// ~25% drugs.
	ExtraConcepts int
	// SynonymProb is the probability a synthetic concept gets a synonym
	// (a second one with half that probability).
	SynonymProb float64
	// MultiParentProb is the probability a synthetic concept receives a
	// second is-a parent, making the taxonomy a DAG rather than a tree.
	MultiParentProb float64
	// RelationshipsPerDisorder is the expected number of attribute
	// relationships (finding-site-of, treated-by, due-to) leaving each
	// synthetic disorder.
	RelationshipsPerDisorder float64
}

// DefaultGenConfig returns a laptop-scale configuration: roughly two
// thousand concepts, SNOMED-like branching and relationship density.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Seed:                     1,
		ExtraConcepts:            2000,
		SynonymProb:              0.4,
		MultiParentProb:          0.15,
		RelationshipsPerDisorder: 2.0,
	}
}

// Word pools for synthetic clinical terms. Combined, they yield a
// vocabulary whose tokens overlap across concepts the way clinical
// language does (many disorders share "chronic", "stenosis", organ
// names, ...), which is what makes IR scoring over the ontology
// non-trivial.
var (
	genSeverities = []string{
		"Acute", "Chronic", "Congenital", "Severe", "Mild", "Recurrent",
		"Progressive", "Idiopathic", "Secondary", "Neonatal", "Juvenile",
		"Transient",
	}
	genDisorderKinds = []string{
		"stenosis", "insufficiency", "hypertrophy", "inflammation",
		"obstruction", "malformation", "dysfunction", "hypoplasia",
		"dilatation", "fibrosis", "prolapse", "atresia", "ischemia",
		"rupture", "edema",
	}
	genRegions = []string{
		"Left", "Right", "Anterior", "Posterior", "Superior", "Inferior",
		"Medial", "Lateral", "Proximal", "Distal",
	}
	genOrgans = []string{
		"atrial", "ventricular", "aortic", "pulmonary", "tricuspid",
		"septal", "coronary", "valvular", "arterial", "venous",
		"myocardial", "bronchial", "tracheal", "pleural", "diaphragmatic",
	}
	genDrugPrefixes = []string{
		"card", "vaso", "broncho", "angio", "beta", "corti", "pedia",
		"hemo", "neo", "flux", "vera", "mira",
	}
	genDrugSuffixes = []string{
		"olol", "april", "idine", "amide", "azole", "micin", "cillin",
		"statin", "parin", "oxin", "erol", "asone",
	}
)

// Generate builds the synthetic ontology. It panics only on internal
// inconsistencies in the curated tables (program bugs), never on user
// configuration.
func Generate(cfg GenConfig) (*Ontology, error) {
	o := Figure2Fragment()
	o.Name = "SNOMED CT (synthetic)"
	if err := addCardiologyCore(o); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	findingAxis, _ := o.ByCode(CodeClinicalFinding)
	bodyAxis, _ := o.ByCode(CodeBodyStructure)
	pharmaAxis, _ := o.ByCode(CodePharmaProduct)
	if findingAxis == nil || bodyAxis == nil || pharmaAxis == nil {
		return nil, fmt.Errorf("ontology: curated axes missing")
	}

	// Existing concepts partition into kind pools that synthetic
	// concepts attach to and relate with.
	var disorders, structures, drugs []ConceptID
	for _, id := range o.Concepts() {
		switch {
		case o.IsSuperclassOf(findingAxis.ID, id):
			disorders = append(disorders, id)
		case o.IsSuperclassOf(bodyAxis.ID, id):
			structures = append(structures, id)
		case o.IsSuperclassOf(pharmaAxis.ID, id):
			drugs = append(drugs, id)
		}
	}

	pick := func(pool []ConceptID, fallback ConceptID) ConceptID {
		if len(pool) == 0 {
			return fallback
		}
		return pool[r.Intn(len(pool))]
	}

	addSynonyms := func(base string) []string {
		var syn []string
		if r.Float64() < cfg.SynonymProb {
			syn = append(syn, base+" disorder")
			if r.Float64() < cfg.SynonymProb/2 {
				syn = append(syn, base+" condition")
			}
		}
		return syn
	}

	for i := 0; i < cfg.ExtraConcepts; i++ {
		code := fmt.Sprintf("9900%06d", i)
		switch r.Intn(4) {
		case 0, 1: // disorder
			name := fmt.Sprintf("%s %s %s",
				genSeverities[r.Intn(len(genSeverities))],
				genOrgans[r.Intn(len(genOrgans))],
				genDisorderKinds[r.Intn(len(genDisorderKinds))])
			id := o.MustAddConcept(code, name, addSynonyms(name)...)
			parent := pick(disorders, findingAxis.ID)
			o.MustAddRelationship(id, parent, IsA)
			if r.Float64() < cfg.MultiParentProb {
				if p2 := pick(disorders, findingAxis.ID); p2 != parent && p2 != id {
					o.MustAddRelationship(id, p2, IsA)
				}
			}
			// Attribute relationships.
			n := poisson(r, cfg.RelationshipsPerDisorder)
			for j := 0; j < n; j++ {
				switch r.Intn(3) {
				case 0:
					if s := pick(structures, bodyAxis.ID); s != id {
						o.MustAddRelationship(id, s, FindingSiteOf)
					}
				case 1:
					if d := pick(drugs, pharmaAxis.ID); d != id {
						o.MustAddRelationship(id, d, TreatedBy)
					}
				case 2:
					if d2 := pick(disorders, findingAxis.ID); d2 != id {
						o.MustAddRelationship(id, d2, AssociatedWith)
					}
				}
			}
			disorders = append(disorders, id)
		case 2: // structure
			name := fmt.Sprintf("%s %s structure",
				genRegions[r.Intn(len(genRegions))],
				genOrgans[r.Intn(len(genOrgans))])
			id := o.MustAddConcept(code, name)
			parent := pick(structures, bodyAxis.ID)
			o.MustAddRelationship(id, parent, IsA)
			if r.Float64() < cfg.MultiParentProb {
				if p2 := pick(structures, bodyAxis.ID); p2 != parent && p2 != id {
					o.MustAddRelationship(id, p2, PartOf)
				}
			}
			structures = append(structures, id)
		default: // drug
			name := fmt.Sprintf("%s%s",
				genDrugPrefixes[r.Intn(len(genDrugPrefixes))],
				genDrugSuffixes[r.Intn(len(genDrugSuffixes))])
			// Make drug names unique-ish but with shared tokens via a
			// strength qualifier.
			name = fmt.Sprintf("%s %d mg", title(name), 5*(1+r.Intn(40)))
			id := o.MustAddConcept(code, name)
			parent := pick(drugs, pharmaAxis.ID)
			o.MustAddRelationship(id, parent, IsA)
			drugs = append(drugs, id)
		}
	}

	if err := o.ValidateTaxonomy(); err != nil {
		return nil, err
	}
	return o, nil
}

// poisson draws a small Poisson-distributed count with mean lambda
// (Knuth's method; lambda is always tiny here).
func poisson(r *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	limit := math.Exp(-lambda)
	l := 1.0
	for i := 0; ; i++ {
		l *= r.Float64()
		if l < limit {
			return i
		}
	}
}

func title(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if b[0] >= 'a' && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}

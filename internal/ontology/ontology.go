// Package ontology implements the clinical-ontology substrate of
// XOntoRank: a concept graph with taxonomic (is-a) and general attribute
// relationships, a term dictionary with keyword lookup, and a
// description-logic (EL) view with existential role restrictions.
//
// It plays the role of SNOMED CT in the paper. Real SNOMED CT is a
// licensed multi-gigabyte artifact accessed through the NLM UMLS API;
// this package reproduces the structural contract the XOntoRank
// algorithms rely on — concepts, natural-language terms, typed
// relationships, and an is-a DAG — and ships both a curated fragment
// reproducing the paper's Figure 2 and a deterministic synthetic
// generator with SNOMED-like shape (see snomedgen.go and DESIGN.md).
package ontology

import (
	"fmt"
	"sort"
)

// ConceptID identifies a concept within one ontology.
type ConceptID int64

// RelType names a relationship type between concepts.
type RelType string

// IsA is the taxonomic subclass relationship: an edge c --is-a--> p
// states that c is a direct subclass of p.
const IsA RelType = "is-a"

// Common SNOMED CT attribute-relationship types used by the curated
// fragment and the synthetic generator.
const (
	FindingSiteOf  RelType = "finding-site-of"
	CausativeAgent RelType = "causative-agent"
	TreatedBy      RelType = "treated-by"
	DueTo          RelType = "due-to"
	AssociatedWith RelType = "associated-with"
	PartOf         RelType = "part-of"
	HasActiveIngr  RelType = "has-active-ingredient"
)

// Concept is a unit of knowledge: a code (as referenced from XML
// documents), a preferred term, and zero or more synonym terms.
type Concept struct {
	ID        ConceptID
	Code      string
	Preferred string
	Synonyms  []string
}

// Terms returns the preferred term followed by the synonyms.
func (c *Concept) Terms() []string {
	out := make([]string, 0, 1+len(c.Synonyms))
	out = append(out, c.Preferred)
	out = append(out, c.Synonyms...)
	return out
}

// Edge is one typed, directed relationship endpoint.
type Edge struct {
	To   ConceptID
	Type RelType
}

// Ontology is a directed multigraph of concepts. It corresponds to one
// "ontological system" O_i of the paper; SystemID is the identifier by
// which XML code nodes reference it (for SNOMED CT, the HL7 OID).
type Ontology struct {
	SystemID string
	Name     string

	concepts map[ConceptID]*Concept
	byCode   map[string]ConceptID
	out      map[ConceptID][]Edge
	in       map[ConceptID][]Edge
	nextID   ConceptID

	terms *termIndex
}

// New returns an empty ontology with the given system identifier.
func New(systemID, name string) *Ontology {
	return &Ontology{
		SystemID: systemID,
		Name:     name,
		concepts: make(map[ConceptID]*Concept),
		byCode:   make(map[string]ConceptID),
		out:      make(map[ConceptID][]Edge),
		in:       make(map[ConceptID][]Edge),
		nextID:   1,
		terms:    newTermIndex(),
	}
}

// AddConcept inserts a concept with the given code, preferred term and
// synonyms, and returns its ID. Adding a duplicate code is an error.
func (o *Ontology) AddConcept(code, preferred string, synonyms ...string) (ConceptID, error) {
	if code == "" {
		return 0, fmt.Errorf("ontology: empty concept code")
	}
	if _, dup := o.byCode[code]; dup {
		return 0, fmt.Errorf("ontology: duplicate concept code %q", code)
	}
	id := o.nextID
	o.nextID++
	c := &Concept{ID: id, Code: code, Preferred: preferred, Synonyms: synonyms}
	o.concepts[id] = c
	o.byCode[code] = id
	o.terms.add(c)
	return id, nil
}

// MustAddConcept is AddConcept panicking on error; for curated fragments
// and generators whose input is program-controlled.
func (o *Ontology) MustAddConcept(code, preferred string, synonyms ...string) ConceptID {
	id, err := o.AddConcept(code, preferred, synonyms...)
	if err != nil {
		panic(err)
	}
	return id
}

// AddRelationship inserts a typed directed edge from -> to. For IsA
// edges the direction is subclass -> superclass.
func (o *Ontology) AddRelationship(from, to ConceptID, t RelType) error {
	if _, ok := o.concepts[from]; !ok {
		return fmt.Errorf("ontology: unknown source concept %d", from)
	}
	if _, ok := o.concepts[to]; !ok {
		return fmt.Errorf("ontology: unknown target concept %d", to)
	}
	if from == to {
		return fmt.Errorf("ontology: self relationship on concept %d", from)
	}
	for _, e := range o.out[from] {
		if e.To == to && e.Type == t {
			return nil // idempotent
		}
	}
	o.out[from] = append(o.out[from], Edge{To: to, Type: t})
	o.in[to] = append(o.in[to], Edge{To: from, Type: t})
	return nil
}

// MustAddRelationship is AddRelationship panicking on error.
func (o *Ontology) MustAddRelationship(from, to ConceptID, t RelType) {
	if err := o.AddRelationship(from, to, t); err != nil {
		panic(err)
	}
}

// Concept returns the concept with the given ID, or nil.
func (o *Ontology) Concept(id ConceptID) *Concept { return o.concepts[id] }

// ByCode resolves a concept code (as it appears in XML code attributes)
// to its concept. It is the substitute for the UMLS API lookup the paper
// used as a black box.
func (o *Ontology) ByCode(code string) (*Concept, bool) {
	id, ok := o.byCode[code]
	if !ok {
		return nil, false
	}
	return o.concepts[id], true
}

// ByPreferred resolves an exact preferred term (case-sensitive) to a
// concept, or nil.
func (o *Ontology) ByPreferred(term string) *Concept {
	for _, c := range o.concepts {
		if c.Preferred == term {
			return c
		}
	}
	return nil
}

// Len is the number of concepts.
func (o *Ontology) Len() int { return len(o.concepts) }

// NumRelationships is the total number of directed edges.
func (o *Ontology) NumRelationships() int {
	n := 0
	for _, es := range o.out {
		n += len(es)
	}
	return n
}

// Concepts returns all concept IDs in ascending order.
func (o *Ontology) Concepts() []ConceptID {
	ids := make([]ConceptID, 0, len(o.concepts))
	for id := range o.concepts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Out returns the outgoing edges of c. The slice is shared; callers
// must not modify it.
func (o *Ontology) Out(c ConceptID) []Edge { return o.out[c] }

// In returns the incoming edges of c (Edge.To holds the source concept).
// The slice is shared; callers must not modify it.
func (o *Ontology) In(c ConceptID) []Edge { return o.in[c] }

// Neighbors returns every concept adjacent to c, ignoring direction and
// type — the undirected, unlabeled view of Section IV-A.
func (o *Ontology) Neighbors(c ConceptID) []ConceptID {
	seen := make(map[ConceptID]bool)
	var out []ConceptID
	for _, e := range o.out[c] {
		if !seen[e.To] {
			seen[e.To] = true
			out = append(out, e.To)
		}
	}
	for _, e := range o.in[c] {
		if !seen[e.To] {
			seen[e.To] = true
			out = append(out, e.To)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InDegree counts incoming edges of the given type.
func (o *Ontology) InDegree(c ConceptID, t RelType) int {
	n := 0
	for _, e := range o.in[c] {
		if e.Type == t {
			n++
		}
	}
	return n
}

// OutDegree counts outgoing edges of the given type.
func (o *Ontology) OutDegree(c ConceptID, t RelType) int {
	n := 0
	for _, e := range o.out[c] {
		if e.Type == t {
			n++
		}
	}
	return n
}

// RelTypes returns the set of relationship types present in the graph,
// sorted.
func (o *Ontology) RelTypes() []RelType {
	set := make(map[RelType]bool)
	for _, es := range o.out {
		for _, e := range es {
			set[e.Type] = true
		}
	}
	out := make([]RelType, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TermText returns the concatenation of all terms of a concept — the
// concept's "document" for IR scoring within the ontology.
func (o *Ontology) TermText(c ConceptID) string {
	con := o.concepts[c]
	if con == nil {
		return ""
	}
	text := con.Preferred
	for _, s := range con.Synonyms {
		text += " " + s
	}
	return text
}

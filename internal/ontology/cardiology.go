package ontology

// cardiologyCore extends an ontology with the curated pediatric-
// cardiology concepts needed by the paper's query workload (Table I:
// cardiac arrest, coarctation, neonatal cyanosis, carbapenem, ibuprofen,
// supraventricular arrhythmia, pericardial effusion, regurgitant flow,
// amiodarone, acetaminophen). The paper's corpus came from a children's
// cardiac clinic; this core gives the synthetic corpus the same clinical
// vocabulary and, crucially, the ontological paths the ontology-aware
// algorithms exploit (disorder --treated-by--> drug,
// disorder --finding-site-of--> structure, sibling drugs under a common
// class for the acetaminophen/aspirin context-mismatch case).
//
// Concept entries give stable synthetic codes in the 9xx.. range so they
// never collide with the Figure-2 fragment.
type coreConcept struct {
	code      string
	preferred string
	synonyms  []string
	parents   []string // codes
}

type coreRel struct {
	from, to string // codes
	t        RelType
}

var cardiologyConcepts = []coreConcept{
	// Structures.
	{code: "900001", preferred: "Heart structure", synonyms: []string{"Cardiac structure"}, parents: []string{CodeBodyStructure}},
	{code: "900002", preferred: "Atrium", synonyms: []string{"Atrial structure"}, parents: []string{"900001"}},
	{code: "900003", preferred: "Ventricle", synonyms: []string{"Ventricular structure"}, parents: []string{"900001"}},
	{code: "900004", preferred: "Pericardium", synonyms: []string{"Pericardial sac"}, parents: []string{"900001"}},
	{code: "900005", preferred: "Aorta", synonyms: []string{"Aortic structure"}, parents: []string{CodeBodyStructure}},
	{code: "900006", preferred: "Mitral valve", synonyms: []string{"Mitral valve structure"}, parents: []string{"900001"}},
	{code: "900007", preferred: "Ductus arteriosus", parents: []string{"900005"}},
	{code: "900008", preferred: "Cardiac conduction system", parents: []string{"900001"}},

	// Disorders and findings.
	{code: "910001", preferred: "Cardiovascular disorder", synonyms: []string{"Disorder of cardiovascular system"}, parents: []string{CodeClinicalFinding}},
	{code: "910002", preferred: "Cardiac arrest", synonyms: []string{"Cardiopulmonary arrest"}, parents: []string{"910001"}},
	{code: "910003", preferred: "Coarctation of aorta", synonyms: []string{"Aortic coarctation", "Coarctation"}, parents: []string{"910001"}},
	{code: "910004", preferred: "Neonatal cyanosis", synonyms: []string{"Cyanosis of newborn"}, parents: []string{"910001"}},
	{code: "910005", preferred: "Arrhythmia", synonyms: []string{"Cardiac arrhythmia", "Cardiac dysrhythmia"}, parents: []string{"910001"}},
	{code: "910006", preferred: "Supraventricular arrhythmia", parents: []string{"910005"}},
	{code: "910007", preferred: "Supraventricular tachycardia", synonyms: []string{"SVT"}, parents: []string{"910006"}},
	{code: "910008", preferred: "Ventricular tachycardia", parents: []string{"910005"}},
	{code: "910009", preferred: "Pericardial effusion", synonyms: []string{"Fluid in pericardial sac"}, parents: []string{"910001"}},
	{code: "910010", preferred: "Regurgitant flow", synonyms: []string{"Valvular regurgitation"}, parents: []string{"910001"}},
	{code: "910011", preferred: "Mitral regurgitation", synonyms: []string{"Mitral insufficiency"}, parents: []string{"910010"}},
	{code: "910012", preferred: "Patent ductus arteriosus", synonyms: []string{"PDA"}, parents: []string{"910001"}},
	{code: "910013", preferred: "Endocarditis", synonyms: []string{"Bacterial endocarditis"}, parents: []string{"910001"}},
	{code: "910014", preferred: "Kawasaki disease", synonyms: []string{"Mucocutaneous lymph node syndrome"}, parents: []string{"910001"}},
	{code: "910015", preferred: "Atrial fibrillation", parents: []string{"910006"}},
	{code: "910016", preferred: "Atrial flutter", parents: []string{"910006"}},
	{code: "910017", preferred: "Fever", synonyms: []string{"Pyrexia", "Febrile"}, parents: []string{CodeClinicalFinding}},
	{code: "910018", preferred: "Pain", synonyms: []string{"Pain finding"}, parents: []string{CodeClinicalFinding}},

	// Drugs.
	{code: "920001", preferred: "Antiarrhythmic agent", parents: []string{CodePharmaProduct}},
	{code: "920002", preferred: "Amiodarone", parents: []string{"920001"}},
	{code: "920003", preferred: "Adenosine", parents: []string{"920001"}},
	{code: "920004", preferred: "Digoxin", parents: []string{"920001"}},
	{code: "920005", preferred: "Antibiotic agent", synonyms: []string{"Antibacterial agent"}, parents: []string{CodePharmaProduct}},
	{code: "920006", preferred: "Carbapenem", parents: []string{"920005"}},
	{code: "920007", preferred: "Meropenem", parents: []string{"920006"}},
	{code: "920008", preferred: "Analgesic agent", synonyms: []string{"Pain relief agent"}, parents: []string{CodePharmaProduct}},
	{code: "920009", preferred: "Acetaminophen", synonyms: []string{"Paracetamol"}, parents: []string{"920008"}},
	{code: "920010", preferred: "Aspirin", synonyms: []string{"Acetylsalicylic acid"}, parents: []string{"920008"}},
	{code: "920011", preferred: "Ibuprofen", parents: []string{"920008"}},
	{code: "920012", preferred: "Epinephrine", synonyms: []string{"Adrenaline"}, parents: []string{CodePharmaProduct}},
	{code: "920013", preferred: "Furosemide", synonyms: []string{"Frusemide"}, parents: []string{CodePharmaProduct}},
	{code: "920014", preferred: "Prostaglandin", synonyms: []string{"Alprostadil"}, parents: []string{CodePharmaProduct}},
	{code: "920015", preferred: "Oxygen therapy agent", synonyms: []string{"Oxygen"}, parents: []string{CodePharmaProduct}},

	// Procedures.
	{code: "930001", preferred: "Echocardiogram", synonyms: []string{"Cardiac ultrasound"}, parents: []string{CodeProcedure}},
	{code: "930002", preferred: "Electrocardiogram", synonyms: []string{"ECG", "EKG"}, parents: []string{CodeProcedure}},
	{code: "930003", preferred: "Cardiopulmonary resuscitation", synonyms: []string{"CPR"}, parents: []string{CodeProcedure}},
	{code: "930004", preferred: "Cardioversion", parents: []string{CodeProcedure}},
}

var cardiologyRelationships = []coreRel{
	// finding-site-of: disorder -> structure.
	{"910002", "900001", FindingSiteOf}, // cardiac arrest @ heart
	{"910003", "900005", FindingSiteOf}, // coarctation @ aorta
	{"910005", "900008", FindingSiteOf}, // arrhythmia @ conduction system
	{"910006", "900002", FindingSiteOf}, // SV arrhythmia @ atrium
	{"910008", "900003", FindingSiteOf}, // v-tach @ ventricle
	{"910009", "900004", FindingSiteOf}, // pericardial effusion @ pericardium
	{"910010", "900006", FindingSiteOf}, // regurgitant flow @ mitral valve
	{"910011", "900006", FindingSiteOf},
	{"910012", "900007", FindingSiteOf}, // PDA @ ductus arteriosus
	{"910013", "900001", FindingSiteOf}, // endocarditis @ heart

	// treated-by: disorder -> drug.
	{"910002", "920012", TreatedBy}, // cardiac arrest -> epinephrine
	{"910003", "920014", TreatedBy}, // coarctation -> prostaglandin
	{"910004", "920015", TreatedBy}, // neonatal cyanosis -> oxygen
	{"910006", "920003", TreatedBy}, // SV arrhythmia -> adenosine
	{"910007", "920003", TreatedBy},
	{"910007", "920004", TreatedBy},
	{"910008", "920002", TreatedBy}, // v-tach -> amiodarone
	{"910006", "920002", TreatedBy}, // SV arrhythmia -> amiodarone
	{"910009", "920013", TreatedBy}, // pericardial effusion -> furosemide
	{"910012", "920011", TreatedBy}, // PDA -> ibuprofen
	{"910013", "920006", TreatedBy}, // endocarditis -> carbapenem
	{"910013", "920007", TreatedBy},
	{"910014", "920010", TreatedBy}, // Kawasaki -> aspirin
	{"910017", "920009", TreatedBy}, // fever -> acetaminophen
	{"910018", "920009", TreatedBy}, // pain -> acetaminophen
	{"910018", "920010", TreatedBy}, // pain -> aspirin
	{"910018", "920011", TreatedBy}, // pain -> ibuprofen

	// due-to / associated-with.
	{"910004", "910003", DueTo},          // neonatal cyanosis due to coarctation
	{"910002", "910008", DueTo},          // arrest due to v-tach
	{"910011", "910010", AssociatedWith}, // mitral regurgitation ~ regurgitant flow
	{"910014", "910013", AssociatedWith},
}

// addCardiologyCore installs the curated cardiology concepts and
// relationships into o, which must already contain the Figure-2
// fragment (it reuses its axis roots). Returns an error on any
// inconsistent entry; the tables above are program data, so errors
// indicate a bug.
func addCardiologyCore(o *Ontology) error {
	for _, cc := range cardiologyConcepts {
		id, err := o.AddConcept(cc.code, cc.preferred, cc.synonyms...)
		if err != nil {
			return err
		}
		for _, p := range cc.parents {
			pc, ok := o.ByCode(p)
			if !ok {
				return &missingCodeError{code: p, ctx: cc.preferred}
			}
			if err := o.AddRelationship(id, pc.ID, IsA); err != nil {
				return err
			}
		}
	}
	for _, r := range cardiologyRelationships {
		from, ok := o.ByCode(r.from)
		if !ok {
			return &missingCodeError{code: r.from, ctx: string(r.t)}
		}
		to, ok := o.ByCode(r.to)
		if !ok {
			return &missingCodeError{code: r.to, ctx: string(r.t)}
		}
		if err := o.AddRelationship(from.ID, to.ID, r.t); err != nil {
			return err
		}
	}
	return nil
}

type missingCodeError struct {
	code, ctx string
}

func (e *missingCodeError) Error() string {
	return "ontology: unknown concept code " + e.code + " referenced by " + e.ctx
}

package ontology

import (
	"bytes"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Seed: 42, ExtraConcepts: 200, SynonymProb: 0.4, MultiParentProb: 0.2, RelationshipsPerDisorder: 2}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() || a.NumRelationships() != b.NumRelationships() {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d concepts/rels",
			a.Len(), a.NumRelationships(), b.Len(), b.NumRelationships())
	}
	var bufA, bufB bytes.Buffer
	if err := a.Save(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Error("same seed produced different serialized ontologies")
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	cfg := GenConfig{Seed: 1, ExtraConcepts: 100, SynonymProb: 0.4, MultiParentProb: 0.2, RelationshipsPerDisorder: 2}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	_ = a.Save(&bufA)
	_ = b.Save(&bufB)
	if bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Error("different seeds produced identical ontologies")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.ExtraConcepts = 500
	o, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if o.Len() < 500 {
		t.Errorf("only %d concepts", o.Len())
	}
	if err := o.ValidateTaxonomy(); err != nil {
		t.Fatalf("generated taxonomy has a cycle: %v", err)
	}
	// Curated cores present.
	for _, pref := range []string{"Asthma", "Cardiac arrest", "Amiodarone", "Acetaminophen", "Aspirin", "Supraventricular arrhythmia"} {
		if o.ByPreferred(pref) == nil {
			t.Errorf("curated concept %q missing from generated ontology", pref)
		}
	}
	// Relationship mix includes attribute relationships.
	types := map[RelType]bool{}
	for _, tt := range o.RelTypes() {
		types[tt] = true
	}
	for _, want := range []RelType{IsA, FindingSiteOf, TreatedBy} {
		if !types[want] {
			t.Errorf("relationship type %s missing", want)
		}
	}
	// Single root (all concepts reachable upward to the SNOMED root).
	roots := o.Roots()
	if len(roots) != 1 {
		t.Errorf("generated ontology has %d roots", len(roots))
	}
}

func TestGenerateAcetaminophenAspirinSiblings(t *testing.T) {
	// The Table-I context-mismatch case needs acetaminophen and aspirin
	// to be taxonomy siblings under a shared analgesic class.
	o, err := Generate(GenConfig{Seed: 3, ExtraConcepts: 0, SynonymProb: 0, MultiParentProb: 0, RelationshipsPerDisorder: 0})
	if err != nil {
		t.Fatal(err)
	}
	acet := o.ByPreferred("Acetaminophen")
	asp := o.ByPreferred("Aspirin")
	analg := o.ByPreferred("Analgesic agent")
	if acet == nil || asp == nil || analg == nil {
		t.Fatal("analgesic concepts missing")
	}
	if !o.IsSuperclassOf(analg.ID, acet.ID) || !o.IsSuperclassOf(analg.ID, asp.ID) {
		t.Error("acetaminophen and aspirin must both be subclasses of Analgesic agent")
	}
	if d := o.TaxonomicDistance(acet.ID, asp.ID); d != 2 {
		t.Errorf("sibling distance = %d, want 2", d)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	o, err := Generate(GenConfig{Seed: 7, ExtraConcepts: 120, SynonymProb: 0.5, MultiParentProb: 0.2, RelationshipsPerDisorder: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.Save(&buf); err != nil {
		t.Fatal(err)
	}
	o2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if o2.Len() != o.Len() || o2.NumRelationships() != o.NumRelationships() {
		t.Fatalf("round trip changed sizes: %d/%d vs %d/%d",
			o.Len(), o.NumRelationships(), o2.Len(), o2.NumRelationships())
	}
	if o2.SystemID != o.SystemID || o2.Name != o.Name {
		t.Error("round trip changed identity")
	}
	// Term index rebuilt on load.
	if len(o2.ConceptsContaining("asthma")) != len(o.ConceptsContaining("asthma")) {
		t.Error("term index differs after round trip")
	}
	// Second save identical.
	var buf2 bytes.Buffer
	if err := o2.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("save -> load -> save not stable")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"not json",
		`{"concepts":[{"code":"a","preferred":"A"}],"relationships":[{"from":"a","to":"missing","type":"is-a"}]}`,
		`{"concepts":[{"code":"a","preferred":"A"}],"relationships":[{"from":"missing","to":"a","type":"is-a"}]}`,
		`{"concepts":[{"code":"a","preferred":"A"},{"code":"a","preferred":"B"}]}`,
	}
	for _, s := range cases {
		if _, err := Load(bytes.NewReader([]byte(s))); err == nil {
			t.Errorf("Load(%q): want error", s)
		}
	}
}

func TestPoissonProperties(t *testing.T) {
	o, err := Generate(GenConfig{Seed: 9, ExtraConcepts: 300, SynonymProb: 0.3, MultiParentProb: 0.1, RelationshipsPerDisorder: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Relationship density roughly matches the configured mean: with
	// ~150 disorders at lambda 2 we expect a few hundred attribute
	// relationships beyond the curated ones.
	attr := 0
	for _, id := range o.Concepts() {
		for _, e := range o.Out(id) {
			if e.Type != IsA {
				attr++
			}
		}
	}
	if attr < 100 {
		t.Errorf("only %d attribute relationships generated", attr)
	}
}

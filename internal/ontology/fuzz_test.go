package ontology

import (
	"bytes"
	"testing"
)

// FuzzLoad feeds arbitrary bytes through the ontology file loader.
// Load must never panic, and anything it accepts must round-trip
// stably: Load → Save → Load → Save produces identical bytes, and the
// reloaded graph answers the same lookups.
func FuzzLoad(f *testing.F) {
	// Seed with a real saved ontology plus structural near-misses.
	ont, err := Generate(GenConfig{Seed: 5, ExtraConcepts: 15, SynonymProb: 0.5,
		MultiParentProb: 0.2, RelationshipsPerDisorder: 1})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ont.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"systemId":"x","name":"y","concepts":[]}`))
	f.Add([]byte(`{"systemId":"s","name":"n","concepts":[{"code":"C1","preferred":"a"},{"code":"C2","preferred":"b","synonyms":["bee"]}],"relationships":[{"from":"C1","to":"C2","type":"isa"},{"from":"C1","to":"CX","type":"isa"}]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		o, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := o.Save(&first); err != nil {
			t.Fatalf("Save after successful Load: %v", err)
		}
		o2, err := Load(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("reload of own Save output: %v", err)
		}
		var second bytes.Buffer
		if err := o2.Save(&second); err != nil {
			t.Fatalf("second Save: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("Save not canonical:\nfirst  %s\nsecond %s", first.Bytes(), second.Bytes())
		}
		if o.Len() != o2.Len() {
			t.Fatalf("concept count changed across round trip: %d -> %d", o.Len(), o2.Len())
		}
		if o.NumRelationships() != o2.NumRelationships() {
			t.Fatalf("relationship count changed across round trip: %d -> %d",
				o.NumRelationships(), o2.NumRelationships())
		}
		for _, id := range o.Concepts() {
			c := o.Concept(id)
			if c == nil {
				t.Fatalf("Concepts lists %v but Concept misses it", id)
			}
			c2, ok := o2.ByCode(c.Code)
			if !ok {
				t.Fatalf("concept %q lost across round trip", c.Code)
			}
			if c.Preferred != c2.Preferred || len(c.Synonyms) != len(c2.Synonyms) {
				t.Fatalf("concept %q changed across round trip: %+v vs %+v", c.Code, c, c2)
			}
		}
	})
}

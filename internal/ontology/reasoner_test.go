package ontology

import (
	"reflect"
	"testing"
)

func TestReasonerTaxonomicSubsumption(t *testing.T) {
	o := Figure2Fragment()
	r := NewReasoner(o)
	attack := o.ByPreferred("Asthma attack").ID
	asthma := o.ByPreferred("Asthma").ID
	disThorax := o.ByPreferred("Disorder of thorax").ID
	root := o.ByPreferred("SNOMED CT Concept").ID

	if !r.Subsumes(asthma, attack) {
		t.Error("Asthma should subsume Asthma attack")
	}
	if !r.Subsumes(disThorax, attack) {
		t.Error("transitive subsumption missing")
	}
	if !r.Subsumes(root, attack) {
		t.Error("root should subsume everything")
	}
	if r.Subsumes(attack, asthma) {
		t.Error("subsumption direction inverted")
	}
	if !r.Subsumes(attack, attack) {
		t.Error("reflexive subsumption missing")
	}
	// Reasoner subsumers == self + is-a ancestors for a taxonomy-only
	// view of the concept.
	want := append([]ConceptID{attack}, o.Ancestors(attack)...)
	sortIDs := func(ids []ConceptID) []ConceptID {
		out := append([]ConceptID(nil), ids...)
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j] < out[j-1]; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out
	}
	if got := r.Subsumers(attack); !reflect.DeepEqual(got, sortIDs(want)) {
		t.Errorf("Subsumers = %v, want %v", got, sortIDs(want))
	}
}

// The headline EL entailment: existential restrictions are inherited
// down the subsumption hierarchy.
func TestReasonerInheritedExistentials(t *testing.T) {
	o := Figure2Fragment()
	r := NewReasoner(o)
	attack := o.ByPreferred("Asthma attack").ID
	theo := o.ByPreferred("Theophylline").ID
	bronchial := o.ByPreferred("Bronchial structure").ID

	// Asthma attack ⊑ Asthma ⊑ ∃treated-by.Theophylline.
	fillers := r.Fillers(attack, TreatedBy)
	found := false
	for _, f := range fillers {
		if f == theo {
			found = true
		}
	}
	if !found {
		t.Errorf("Asthma attack ⊑ ∃treated-by.Theophylline not entailed: %v", fillers)
	}
	// Direct edge still present.
	direct := r.Fillers(attack, FindingSiteOf)
	if len(direct) == 0 || direct[0] != bronchial {
		t.Errorf("direct finding-site-of lost: %v", direct)
	}
	// Roles enumerated.
	roles := r.EntailedRoles(attack)
	has := map[RelType]bool{}
	for _, role := range roles {
		has[role] = true
	}
	if !has[TreatedBy] || !has[FindingSiteOf] {
		t.Errorf("EntailedRoles = %v", roles)
	}
}

// CR4: domain-style axioms ∃r.B ⊑ A let the reasoner derive new
// subsumptions from entailed restrictions.
func TestReasonerExistentialSubAxiom(t *testing.T) {
	o := Figure2Fragment()
	respDis := o.ByPreferred("Respiratory disorder").ID
	bronchial := o.ByPreferred("Bronchial structure").ID
	attack := o.ByPreferred("Asthma attack").ID
	thorax := o.ByPreferred("Thorax structure").ID

	// "Anything with a finding site in the bronchial structure is a
	// respiratory disorder."
	r := NewReasoner(o, Axiom{
		Kind: ExistentialSub, Role: FindingSiteOf, Sub: bronchial, Sup: respDis,
	})
	if !r.Subsumes(respDis, attack) {
		t.Error("CR4 entailment missing: Asthma attack should be a Respiratory disorder")
	}
	// The axiom must also fire through SUBSUMERS of the filler: add one
	// keyed on the thorax structure, reached because Bronchial structure
	// ⊑ Thorax structure.
	marker, _ := o.AddConcept("marker", "Thoracic-sited finding")
	r2 := NewReasoner(o, Axiom{
		Kind: ExistentialSub, Role: FindingSiteOf, Sub: thorax, Sup: marker,
	})
	if !r2.Subsumes(marker, attack) {
		t.Error("CR4 through filler subsumption missing")
	}
}

func TestReasonerNoSpuriousEntailments(t *testing.T) {
	o := Figure2Fragment()
	r := NewReasoner(o)
	theo := o.ByPreferred("Theophylline").ID
	asthma := o.ByPreferred("Asthma").ID
	// Drugs are not disorders.
	if r.Subsumes(asthma, theo) || r.Subsumes(theo, asthma) {
		t.Error("spurious cross-axis subsumption")
	}
	// treated-by points from disorders to drugs; drugs entail no
	// treated-by restrictions of their own.
	if got := r.Fillers(theo, TreatedBy); len(got) != 0 {
		t.Errorf("Theophylline treated-by fillers = %v", got)
	}
	// Unknown concept: empty answers, no panic.
	if got := r.Subsumers(ConceptID(1 << 40)); len(got) != 0 {
		t.Errorf("unknown concept subsumers = %v", got)
	}
}

func TestReasonerOnGeneratedOntology(t *testing.T) {
	o, err := Generate(GenConfig{
		Seed: 13, ExtraConcepts: 150, SynonymProb: 0.3,
		MultiParentProb: 0.2, RelationshipsPerDisorder: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := NewReasoner(o)
	// Property: Subsumes agrees with is-a reachability for every concept
	// against a sample of ancestors/non-ancestors.
	ids := o.Concepts()
	for _, c := range ids[:60] {
		anc := map[ConceptID]bool{}
		for _, a := range o.Ancestors(c) {
			anc[a] = true
		}
		for _, d := range ids[:60] {
			want := anc[d] || d == c
			if got := r.Subsumes(d, c); got != want {
				t.Fatalf("Subsumes(%d, %d) = %v, want %v", d, c, got, want)
			}
		}
		// Entailed fillers are a superset of the direct edges.
		for _, e := range o.Out(c) {
			if e.Type == IsA {
				continue
			}
			okFiller := false
			for _, f := range r.Fillers(c, e.Type) {
				if f == e.To {
					okFiller = true
				}
			}
			if !okFiller {
				t.Fatalf("direct edge %s(%d, %d) not entailed", e.Type, c, e.To)
			}
		}
	}
}

package ontology

import "fmt"

// Superclasses returns the direct superclasses of c (targets of its
// outgoing is-a edges).
func (o *Ontology) Superclasses(c ConceptID) []ConceptID {
	var out []ConceptID
	for _, e := range o.out[c] {
		if e.Type == IsA {
			out = append(out, e.To)
		}
	}
	return out
}

// Subclasses returns the direct subclasses of c (sources of its
// incoming is-a edges).
func (o *Ontology) Subclasses(c ConceptID) []ConceptID {
	var out []ConceptID
	for _, e := range o.in[c] {
		if e.Type == IsA {
			out = append(out, e.To)
		}
	}
	return out
}

// NumSubclasses counts the direct subclasses of c — the fan-out used by
// the Taxonomy strategy's partial-satisfaction heuristic (OntoScore is
// divided by this count when flowing from a class to a subclass).
func (o *Ontology) NumSubclasses(c ConceptID) int {
	return o.InDegree(c, IsA)
}

// Ancestors returns every proper is-a ancestor of c (transitive
// superclasses), in BFS order from c.
func (o *Ontology) Ancestors(c ConceptID) []ConceptID {
	return o.isaClosure(c, o.Superclasses)
}

// DescendantsOf returns every proper is-a descendant of c (transitive
// subclasses), in BFS order from c.
func (o *Ontology) DescendantsOf(c ConceptID) []ConceptID {
	return o.isaClosure(c, o.Subclasses)
}

func (o *Ontology) isaClosure(c ConceptID, next func(ConceptID) []ConceptID) []ConceptID {
	seen := map[ConceptID]bool{c: true}
	var out []ConceptID
	frontier := []ConceptID{c}
	for len(frontier) > 0 {
		var nxt []ConceptID
		for _, u := range frontier {
			for _, v := range next(u) {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
					nxt = append(nxt, v)
				}
			}
		}
		frontier = nxt
	}
	return out
}

// IsSuperclassOf reports whether sup is a (possibly indirect) superclass
// of sub, i.e. there is an is-a path sub -> ... -> sup.
func (o *Ontology) IsSuperclassOf(sup, sub ConceptID) bool {
	if sup == sub {
		return false
	}
	seen := map[ConceptID]bool{sub: true}
	stack := []ConceptID{sub}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range o.Superclasses(u) {
			if p == sup {
				return true
			}
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return false
}

// Roots returns the concepts with no superclass — the tops of the is-a
// DAG.
func (o *Ontology) Roots() []ConceptID {
	var out []ConceptID
	for _, id := range o.Concepts() {
		if len(o.Superclasses(id)) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// ValidateTaxonomy checks that the is-a edges form a DAG (the paper:
// "The is-a links form a Directed Acyclic Graph, since cycles are not
// permitted based on subclass relationships"). It returns an error
// naming a concept on a cycle if one exists.
func (o *Ontology) ValidateTaxonomy() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[ConceptID]int, len(o.concepts))
	var visit func(ConceptID) error
	visit = func(u ConceptID) error {
		color[u] = gray
		for _, p := range o.Superclasses(u) {
			switch color[p] {
			case gray:
				return fmt.Errorf("ontology: is-a cycle through concept %d (%s)", p, o.concepts[p].Preferred)
			case white:
				if err := visit(p); err != nil {
					return err
				}
			}
		}
		color[u] = black
		return nil
	}
	for id := range o.concepts {
		if color[id] == white {
			if err := visit(id); err != nil {
				return err
			}
		}
	}
	return nil
}

// TaxonomicDistance returns the length of the shortest path between a
// and b using is-a edges in either direction, or -1 if disconnected.
// Used by the simulated relevance oracle.
func (o *Ontology) TaxonomicDistance(a, b ConceptID) int {
	return o.graphDistance(a, b, func(c ConceptID) []ConceptID {
		out := o.Superclasses(c)
		return append(out, o.Subclasses(c)...)
	})
}

// GraphDistance returns the length of the shortest undirected path
// between a and b over all relationship types, or -1 if disconnected.
func (o *Ontology) GraphDistance(a, b ConceptID) int {
	return o.graphDistance(a, b, o.Neighbors)
}

func (o *Ontology) graphDistance(a, b ConceptID, next func(ConceptID) []ConceptID) int {
	if a == b {
		return 0
	}
	seen := map[ConceptID]bool{a: true}
	frontier := []ConceptID{a}
	dist := 0
	for len(frontier) > 0 {
		dist++
		var nxt []ConceptID
		for _, u := range frontier {
			for _, v := range next(u) {
				if v == b {
					return dist
				}
				if !seen[v] {
					seen[v] = true
					nxt = append(nxt, v)
				}
			}
		}
		frontier = nxt
	}
	return -1
}

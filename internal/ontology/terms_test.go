package ontology

import (
	"testing"
)

func TestConceptsContainingSingleToken(t *testing.T) {
	o := Figure2Fragment()
	got := o.ConceptsContaining("asthma")
	// Asthma, Asthma attack, 5 synthetic asthma subclasses, plus
	// "Bronchial asthma" is a synonym of Asthma (same concept).
	if len(got) != 7 {
		names := make([]string, 0, len(got))
		for _, id := range got {
			names = append(names, o.Concept(id).Preferred)
		}
		t.Fatalf("ConceptsContaining(asthma) = %v (%d), want 7", names, len(got))
	}
}

func TestConceptsContainingPhrase(t *testing.T) {
	o := Figure2Fragment()
	got := o.ConceptsContaining("bronchial structure")
	if len(got) != 1 {
		t.Fatalf("phrase lookup returned %d concepts", len(got))
	}
	if o.Concept(got[0]).Preferred != "Bronchial structure" {
		t.Errorf("got %q", o.Concept(got[0]).Preferred)
	}
	// Phrase must be contiguous: "disorder bronchus" (missing "of")
	// matches nothing.
	if got := o.ConceptsContaining("disorder bronchus"); len(got) != 0 {
		t.Errorf("non-contiguous phrase matched %d concepts", len(got))
	}
}

func TestConceptsContainingSynonym(t *testing.T) {
	o := Figure2Fragment()
	got := o.ConceptsContaining("salbutamol")
	if len(got) != 1 || o.Concept(got[0]).Preferred != "Albuterol" {
		t.Errorf("synonym lookup failed: %v", got)
	}
}

func TestConceptsContainingCaseInsensitive(t *testing.T) {
	o := Figure2Fragment()
	a := o.ConceptsContaining("THEOPHYLLINE")
	b := o.ConceptsContaining("theophylline")
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Errorf("case sensitivity: %v vs %v", a, b)
	}
}

func TestConceptsContainingEmptyAndMissing(t *testing.T) {
	o := Figure2Fragment()
	if got := o.ConceptsContaining(""); got != nil {
		t.Errorf("empty keyword matched %v", got)
	}
	if got := o.ConceptsContaining("zzzunknown"); len(got) != 0 {
		t.Errorf("unknown keyword matched %v", got)
	}
}

func TestVocabularyAndTokenFrequency(t *testing.T) {
	o := Figure2Fragment()
	vocab := o.Vocabulary()
	if len(vocab) == 0 {
		t.Fatal("empty vocabulary")
	}
	// Sorted and unique.
	for i := 1; i < len(vocab); i++ {
		if vocab[i-1] >= vocab[i] {
			t.Fatalf("vocabulary not sorted/unique at %d: %q >= %q", i, vocab[i-1], vocab[i])
		}
	}
	if o.TokenFrequency("asthma") != 7 {
		t.Errorf("TokenFrequency(asthma) = %d", o.TokenFrequency("asthma"))
	}
	if o.TokenFrequency("nonexistent") != 0 {
		t.Error("TokenFrequency of unknown token should be 0")
	}
	// A token appearing in several terms of one concept counts once.
	o2 := New("s", "t")
	o2.MustAddConcept("1", "Pain", "Pain finding", "Pain condition")
	if o2.TokenFrequency("pain") != 1 {
		t.Errorf("per-concept dedup failed: %d", o2.TokenFrequency("pain"))
	}
}

package ontology

// SNOMEDSystemID is the HL7 OID by which CDA documents reference
// SNOMED CT, as used throughout the paper's Figure 1.
const SNOMEDSystemID = "2.16.840.1.113883.6.96"

// Well-known concept codes of the curated fragment. The codes for
// Asthma, Medications and Theophylline are the real SNOMED CT codes that
// appear in the paper's Figure 1; the rest are stable synthetic codes.
const (
	CodeRootConcept        = "138875005" // SNOMED CT Concept (root)
	CodeClinicalFinding    = "404684003"
	CodeBodyStructure      = "123037004"
	CodePharmaProduct      = "373873005"
	CodeProcedure          = "71388002"
	CodeMedications        = "14657009"  // Figure 1 line 38
	CodeAsthma             = "195967001" // Figure 1 line 39
	CodeTheophylline       = "66493003"  // Figure 1 line 54
	CodeAlbuterol          = "372897005"
	CodeBronchitis         = "32398004"
	CodeBronchialStructure = "955009"
	CodeBronchus           = "955009.1"
	CodeThoraxStructure    = "51185008"
	CodeDisorderOfBronchus = "85715005"
	CodeDisorderOfThorax   = "105981003"
	CodeFindingOfThorax    = "298705000"
	CodeAsthmaAttack       = "266364000"
	CodeRespiratoryDis     = "50043002"
	CodeBronchodilator     = "372658000"
)

// Figure2Fragment builds the curated respiratory fragment reproducing
// the paper's Figure 2 and the worked examples of Sections I and IV:
//
//   - Asthma is-a Disorder of Bronchus is-a Disorder of Thorax is-a
//     Finding of Region of Thorax;
//   - Asthma Attack is-a Asthma, with finding-site-of Bronchial
//     Structure (the axiom "Asthma Attack SUBCLASS-OF Asthma AND
//     Exists finding-site-of.Bronchial Structure");
//   - the intro example: the query "Bronchial Structure Theophylline"
//     reaches a document that mentions only Asthma and Theophylline.
//
// Asthma is given several direct subclasses so the Taxonomy strategy's
// 1/nSubclasses flow division is exercised (in real SNOMED, Asthma has
// 26 direct subclasses).
func Figure2Fragment() *Ontology {
	o := New(SNOMEDSystemID, "SNOMED CT (curated respiratory fragment)")
	root := o.MustAddConcept(CodeRootConcept, "SNOMED CT Concept")
	finding := o.MustAddConcept(CodeClinicalFinding, "Clinical finding")
	body := o.MustAddConcept(CodeBodyStructure, "Body structure")
	pharma := o.MustAddConcept(CodePharmaProduct, "Pharmaceutical / biologic product")
	proc := o.MustAddConcept(CodeProcedure, "Procedure")
	o.MustAddRelationship(finding, root, IsA)
	o.MustAddRelationship(body, root, IsA)
	o.MustAddRelationship(pharma, root, IsA)
	o.MustAddRelationship(proc, root, IsA)

	// Body structures.
	thorax := o.MustAddConcept(CodeThoraxStructure, "Thorax structure", "Thoracic structure")
	bronchial := o.MustAddConcept(CodeBronchialStructure, "Bronchial structure", "Structure of bronchus")
	bronchus := o.MustAddConcept(CodeBronchus, "Bronchus")
	o.MustAddRelationship(thorax, body, IsA)
	o.MustAddRelationship(bronchial, thorax, IsA)
	o.MustAddRelationship(bronchus, bronchial, IsA)
	o.MustAddRelationship(bronchus, thorax, PartOf)

	// Findings / disorders.
	findingThorax := o.MustAddConcept(CodeFindingOfThorax, "Finding of region of thorax")
	disThorax := o.MustAddConcept(CodeDisorderOfThorax, "Disorder of thorax")
	respDis := o.MustAddConcept(CodeRespiratoryDis, "Respiratory disorder", "Disorder of respiratory system")
	disBronchus := o.MustAddConcept(CodeDisorderOfBronchus, "Disorder of bronchus", "Bronchial disorder")
	asthma := o.MustAddConcept(CodeAsthma, "Asthma", "Bronchial asthma")
	asthmaAttack := o.MustAddConcept(CodeAsthmaAttack, "Asthma attack", "Acute asthma attack")
	bronchitis := o.MustAddConcept(CodeBronchitis, "Bronchitis")
	o.MustAddRelationship(findingThorax, finding, IsA)
	o.MustAddRelationship(disThorax, findingThorax, IsA)
	o.MustAddRelationship(respDis, finding, IsA)
	o.MustAddRelationship(disBronchus, disThorax, IsA)
	o.MustAddRelationship(disBronchus, respDis, IsA)
	o.MustAddRelationship(asthma, disBronchus, IsA)
	o.MustAddRelationship(bronchitis, disBronchus, IsA)
	o.MustAddRelationship(asthmaAttack, asthma, IsA)

	// Additional asthma subclasses: exercise the 1/nSubclasses division.
	for i, name := range []string{
		"Allergic asthma", "Exercise-induced asthma", "Childhood asthma",
		"Severe persistent asthma", "Mild intermittent asthma",
	} {
		id := o.MustAddConcept(CodeAsthmaAttack+"."+string(rune('a'+i)), name)
		o.MustAddRelationship(id, asthma, IsA)
	}

	// Attribute relationships (Figure 2's finding-site-of links).
	o.MustAddRelationship(asthma, bronchial, FindingSiteOf)
	o.MustAddRelationship(asthmaAttack, bronchial, FindingSiteOf)
	o.MustAddRelationship(bronchitis, bronchial, FindingSiteOf)
	o.MustAddRelationship(disBronchus, bronchus, FindingSiteOf)

	// Drugs, and the Medications finding concept of Figure 1 (the
	// observation-kind code 14657009). As in SNOMED CT, the
	// "Medications" record concept is NOT a taxonomic ancestor of drug
	// products — it lives under Clinical finding — so drug keywords do
	// not flood every observation-kind code node through an is-a hop.
	meds := o.MustAddConcept(CodeMedications, "Medications", "Medication")
	o.MustAddRelationship(meds, finding, IsA)
	broncho := o.MustAddConcept(CodeBronchodilator, "Bronchodilator agent")
	theo := o.MustAddConcept(CodeTheophylline, "Theophylline")
	albut := o.MustAddConcept(CodeAlbuterol, "Albuterol", "Salbutamol")
	o.MustAddRelationship(broncho, pharma, IsA)
	o.MustAddRelationship(theo, broncho, IsA)
	o.MustAddRelationship(albut, broncho, IsA)
	o.MustAddRelationship(asthma, theo, TreatedBy)
	o.MustAddRelationship(asthma, albut, TreatedBy)
	o.MustAddRelationship(bronchitis, albut, TreatedBy)

	return o
}

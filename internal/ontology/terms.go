package ontology

import (
	"sort"

	"repro/internal/xmltree"
)

// termIndex maps word tokens to the concepts whose terms contain them,
// enabling the keyword -> concepts lookup of Algorithm 1 line 2 ("find
// all concept nodes in O that contain w"). It substitutes for the UMLS
// API's string-to-concept method.
type termIndex struct {
	byToken map[string][]ConceptID
}

func newTermIndex() *termIndex {
	return &termIndex{byToken: make(map[string][]ConceptID)}
}

func (t *termIndex) add(c *Concept) {
	seen := make(map[string]bool)
	for _, term := range c.Terms() {
		for _, tok := range xmltree.Tokenize(term) {
			if seen[tok] {
				continue
			}
			seen[tok] = true
			t.byToken[tok] = append(t.byToken[tok], c.ID)
		}
	}
}

// ConceptsContaining returns the concepts one of whose terms contains
// the keyword as a contiguous token phrase (a keyword may be a quoted
// phrase such as "bronchial structure"). Results are sorted by ID.
func (o *Ontology) ConceptsContaining(keyword string) []ConceptID {
	want := xmltree.Tokenize(keyword)
	if len(want) == 0 {
		return nil
	}
	// Candidates: concepts indexed under the first token.
	cands := o.terms.byToken[want[0]]
	if len(want) == 1 {
		out := make([]ConceptID, len(cands))
		copy(out, cands)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	var out []ConceptID
	for _, id := range cands {
		if o.conceptHasPhrase(id, want) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (o *Ontology) conceptHasPhrase(id ConceptID, phrase []string) bool {
	c := o.concepts[id]
	if c == nil {
		return false
	}
	for _, term := range c.Terms() {
		toks := xmltree.Tokenize(term)
		if phraseIn(toks, phrase) {
			return true
		}
	}
	return false
}

func phraseIn(have, want []string) bool {
	if len(want) == 0 || len(have) < len(want) {
		return false
	}
outer:
	for i := 0; i+len(want) <= len(have); i++ {
		for j, w := range want {
			if have[i+j] != w {
				continue outer
			}
		}
		return true
	}
	return false
}

// Vocabulary returns every distinct token occurring in any concept term,
// sorted. Together with the corpus vocabulary it forms the keyword
// universe over which XOnto-DILs are built (paper Section V-B).
func (o *Ontology) Vocabulary() []string {
	out := make([]string, 0, len(o.terms.byToken))
	for tok := range o.terms.byToken {
		out = append(out, tok)
	}
	sort.Strings(out)
	return out
}

// TokenFrequency returns how many concepts contain the token — the
// document frequency of the token when concepts are viewed as documents.
func (o *Ontology) TokenFrequency(tok string) int {
	return len(o.terms.byToken[tok])
}

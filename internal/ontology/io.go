package ontology

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The on-disk format is a single JSON object with concepts and
// relationships, stable under round-tripping. It replaces the flat-file
// SNOMED distribution the paper loaded through the UMLS API.

type jsonOntology struct {
	SystemID      string             `json:"systemId"`
	Name          string             `json:"name"`
	Concepts      []jsonConcept      `json:"concepts"`
	Relationships []jsonRelationship `json:"relationships"`
}

type jsonConcept struct {
	Code      string   `json:"code"`
	Preferred string   `json:"preferred"`
	Synonyms  []string `json:"synonyms,omitempty"`
}

type jsonRelationship struct {
	From string `json:"from"` // concept code
	To   string `json:"to"`   // concept code
	Type string `json:"type"`
}

// Save writes the ontology as JSON.
func (o *Ontology) Save(w io.Writer) error {
	j := jsonOntology{SystemID: o.SystemID, Name: o.Name}
	ids := o.Concepts()
	for _, id := range ids {
		c := o.concepts[id]
		j.Concepts = append(j.Concepts, jsonConcept{
			Code: c.Code, Preferred: c.Preferred, Synonyms: c.Synonyms,
		})
	}
	for _, id := range ids {
		from := o.concepts[id]
		edges := append([]Edge(nil), o.out[id]...)
		sort.Slice(edges, func(a, b int) bool {
			if edges[a].To != edges[b].To {
				return edges[a].To < edges[b].To
			}
			return edges[a].Type < edges[b].Type
		})
		for _, e := range edges {
			j.Relationships = append(j.Relationships, jsonRelationship{
				From: from.Code, To: o.concepts[e.To].Code, Type: string(e.Type),
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(j)
}

// Load reads an ontology previously written by Save.
func Load(r io.Reader) (*Ontology, error) {
	var j jsonOntology
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("ontology: load: %w", err)
	}
	o := New(j.SystemID, j.Name)
	for _, c := range j.Concepts {
		if _, err := o.AddConcept(c.Code, c.Preferred, c.Synonyms...); err != nil {
			return nil, fmt.Errorf("ontology: load: %w", err)
		}
	}
	for _, rel := range j.Relationships {
		from, ok := o.ByCode(rel.From)
		if !ok {
			return nil, fmt.Errorf("ontology: load: relationship from unknown code %q", rel.From)
		}
		to, ok := o.ByCode(rel.To)
		if !ok {
			return nil, fmt.Errorf("ontology: load: relationship to unknown code %q", rel.To)
		}
		if err := o.AddRelationship(from.ID, to.ID, RelType(rel.Type)); err != nil {
			return nil, fmt.Errorf("ontology: load: %w", err)
		}
	}
	return o, nil
}

package ontology

import "sort"

// Frozen is an immutable, cache-friendly snapshot of an ontology's
// graph structure — the "in-memory representations of the ontology
// graphs" the paper's conclusion proposes for scaling index creation.
// All adjacency lists live in shared arenas (CSR layout) and accessor
// calls return subslices of them: zero allocation on the expansion hot
// path, in contrast to the map-backed Ontology whose Neighbors call
// allocates and sorts per invocation.
//
// Frozen implements the same traversal accessors as *Ontology
// (Neighbors, Superclasses, Subclasses, NumSubclasses, Out, In,
// InDegree), so the OntoScore computer can run against either.
type Frozen struct {
	ont *Ontology

	ids   []ConceptID         // dense index -> concept id
	dense map[ConceptID]int32 // concept id -> dense index

	nbrArena []ConceptID
	nbrStart []int32

	supArena []ConceptID
	supStart []int32

	subArena []ConceptID
	subStart []int32

	outArena []Edge
	outStart []int32

	inArena []Edge
	inStart []int32

	// inDegree[t][dense] counts incoming edges of type t.
	inDegree map[RelType][]int32
}

// Freeze builds the immutable snapshot. Later mutations of the source
// ontology are not reflected.
func Freeze(o *Ontology) *Frozen {
	ids := o.Concepts()
	f := &Frozen{
		ont:      o,
		ids:      ids,
		dense:    make(map[ConceptID]int32, len(ids)),
		inDegree: make(map[RelType][]int32),
	}
	for i, id := range ids {
		f.dense[id] = int32(i)
	}
	n := len(ids)
	f.nbrStart = make([]int32, n+1)
	f.supStart = make([]int32, n+1)
	f.subStart = make([]int32, n+1)
	f.outStart = make([]int32, n+1)
	f.inStart = make([]int32, n+1)

	for i, id := range ids {
		f.nbrArena = append(f.nbrArena, o.Neighbors(id)...)
		f.nbrStart[i+1] = int32(len(f.nbrArena))

		sup := o.Superclasses(id)
		sort.Slice(sup, func(a, b int) bool { return sup[a] < sup[b] })
		f.supArena = append(f.supArena, sup...)
		f.supStart[i+1] = int32(len(f.supArena))

		sub := o.Subclasses(id)
		sort.Slice(sub, func(a, b int) bool { return sub[a] < sub[b] })
		f.subArena = append(f.subArena, sub...)
		f.subStart[i+1] = int32(len(f.subArena))

		out := append([]Edge(nil), o.Out(id)...)
		sort.Slice(out, func(a, b int) bool {
			if out[a].To != out[b].To {
				return out[a].To < out[b].To
			}
			return out[a].Type < out[b].Type
		})
		f.outArena = append(f.outArena, out...)
		f.outStart[i+1] = int32(len(f.outArena))

		in := append([]Edge(nil), o.In(id)...)
		sort.Slice(in, func(a, b int) bool {
			if in[a].To != in[b].To {
				return in[a].To < in[b].To
			}
			return in[a].Type < in[b].Type
		})
		f.inArena = append(f.inArena, in...)
		f.inStart[i+1] = int32(len(f.inArena))

		for _, e := range in {
			counts, ok := f.inDegree[e.Type]
			if !ok {
				counts = make([]int32, n)
				f.inDegree[e.Type] = counts
			}
			counts[i]++
		}
	}
	return f
}

// Ontology returns the source ontology (terms, codes, concepts).
func (f *Frozen) Ontology() *Ontology { return f.ont }

// Len is the number of concepts.
func (f *Frozen) Len() int { return len(f.ids) }

func (f *Frozen) idx(c ConceptID) (int32, bool) {
	i, ok := f.dense[c]
	return i, ok
}

// Neighbors returns the undirected, unlabeled adjacency of c. The
// returned slice is shared; callers must not modify it.
func (f *Frozen) Neighbors(c ConceptID) []ConceptID {
	i, ok := f.idx(c)
	if !ok {
		return nil
	}
	return f.nbrArena[f.nbrStart[i]:f.nbrStart[i+1]]
}

// Superclasses returns the direct is-a parents of c (shared slice).
func (f *Frozen) Superclasses(c ConceptID) []ConceptID {
	i, ok := f.idx(c)
	if !ok {
		return nil
	}
	return f.supArena[f.supStart[i]:f.supStart[i+1]]
}

// Subclasses returns the direct is-a children of c (shared slice).
func (f *Frozen) Subclasses(c ConceptID) []ConceptID {
	i, ok := f.idx(c)
	if !ok {
		return nil
	}
	return f.subArena[f.subStart[i]:f.subStart[i+1]]
}

// NumSubclasses counts the direct is-a children of c.
func (f *Frozen) NumSubclasses(c ConceptID) int {
	return len(f.Subclasses(c))
}

// Out returns the outgoing edges of c (shared slice).
func (f *Frozen) Out(c ConceptID) []Edge {
	i, ok := f.idx(c)
	if !ok {
		return nil
	}
	return f.outArena[f.outStart[i]:f.outStart[i+1]]
}

// In returns the incoming edges of c with Edge.To holding the source
// (shared slice).
func (f *Frozen) In(c ConceptID) []Edge {
	i, ok := f.idx(c)
	if !ok {
		return nil
	}
	return f.inArena[f.inStart[i]:f.inStart[i+1]]
}

// InDegree counts incoming edges of the given type.
func (f *Frozen) InDegree(c ConceptID, t RelType) int {
	i, ok := f.idx(c)
	if !ok {
		return 0
	}
	counts, ok := f.inDegree[t]
	if !ok {
		return 0
	}
	return int(counts[i])
}

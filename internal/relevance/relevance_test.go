package relevance

import (
	"testing"

	"repro/internal/cda"
	"repro/internal/dil"
	"repro/internal/ontology"
	"repro/internal/ontoscore"
	"repro/internal/query"
	"repro/internal/xmltree"
)

// buildSVTAspirinCorpus builds a document that references
// Supraventricular arrhythmia and Aspirin — the kind of record the
// acetaminophen query incorrectly reaches through the sibling mapping.
func buildSVTAspirinCorpus(t *testing.T, ont *ontology.Ontology) *xmltree.Corpus {
	t.Helper()
	svt := ont.ByPreferred("Supraventricular arrhythmia")
	asp := ont.ByPreferred("Aspirin")
	meds, _ := ont.ByCode(ontology.CodeMedications)
	if svt == nil || asp == nil || meds == nil {
		t.Fatal("cardiology concepts missing")
	}
	b := cda.NewBuilder("c900", "Eva", "Cardoso")
	b.SetPatient("Kid", "Patient", "F", "20150101")
	sec := b.Section(cda.LOINCProblems, "Problems")
	cda.AddObservation(sec, ont, meds, svt)
	m := b.Section(cda.LOINCMedications, "Medications")
	cda.AddMedication(m, ont, asp, "81 mg daily")
	corpus := xmltree.NewCorpus()
	corpus.Add(b.Document("svt-aspirin"))
	return corpus
}

func genOntology(t *testing.T) *ontology.Ontology {
	t.Helper()
	ont, err := ontology.Generate(ontology.GenConfig{Seed: 2, ExtraConcepts: 0})
	if err != nil {
		t.Fatal(err)
	}
	return ont
}

func searchWith(t *testing.T, corpus *xmltree.Corpus, ont *ontology.Ontology, strategy ontoscore.Strategy, q string) ([]query.Keyword, []query.Result) {
	t.Helper()
	b := dil.NewBuilder(corpus, ont, strategy, dil.DefaultParams())
	e := query.NewEngine(dil.NewIndex(), b, query.DefaultParams())
	kws := query.ParseQuery(q)
	return kws, e.Search(kws, 5)
}

func TestLiteralMatchesRelevant(t *testing.T) {
	ont := genOntology(t)
	corpus := buildSVTAspirinCorpus(t, ont)
	o := NewOracle(ont)
	kws, res := searchWith(t, corpus, ont, ontoscore.StrategyNone, `"supraventricular arrhythmia" aspirin`)
	if len(res) == 0 {
		t.Fatal("no results for literal query")
	}
	j := o.JudgeResult(corpus, kws, res[0])
	if !j.Relevant {
		t.Fatalf("literal match judged irrelevant: %+v", j)
	}
	for _, kj := range j.PerKeyword {
		if !kj.Literal || kj.Distance != 0 {
			t.Errorf("keyword %q: %+v", kj.Keyword, kj)
		}
	}
}

// The acetaminophen/aspirin context-mismatch case: the ontology maps
// acetaminophen to its sibling aspirin (distance 2 via the shared
// Analgesic class), the document also matches supraventricular
// arrhythmia — but aspirin has no ontological connection to the
// arrhythmia context, so the oracle rejects the result, reproducing
// the zeros in Table I's last row.
func TestContextMismatchAcetaminophen(t *testing.T) {
	ont := genOntology(t)
	corpus := buildSVTAspirinCorpus(t, ont)
	o := NewOracle(ont)
	kws, res := searchWith(t, corpus, ont, ontoscore.StrategyTaxonomy, `"supraventricular arrhythmia" acetaminophen`)
	if len(res) == 0 {
		t.Fatal("taxonomy strategy found no results; sibling mapping broken")
	}
	j := o.JudgeResult(corpus, kws, res[0])
	if j.Relevant {
		t.Fatalf("context-mismatch result judged relevant: %+v", j)
	}
	// The acetaminophen keyword specifically failed: not literal, and
	// its ontological match is at least the sibling distance away with
	// no context support.
	kj := j.PerKeyword[1]
	if kj.Literal {
		t.Error("acetaminophen should not match literally")
	}
	if kj.Distance < 2 {
		t.Errorf("distance = %d, want >= 2", kj.Distance)
	}
	if kj.Context || kj.Relevant {
		t.Errorf("acetaminophen keyword judged %+v", kj)
	}
	// The sibling mapping itself is distance 2 (via the shared
	// Analgesic class) and lacks arrhythmia context.
	asp := ont.ByPreferred("Aspirin")
	if d := o.conceptKeywordDistance(asp.ID, "acetaminophen"); d != 2 {
		t.Errorf("aspirin<->acetaminophen distance = %d, want 2", d)
	}
	if o.hasContextSupport(asp.ID, kws, 1) {
		t.Error("aspirin should lack supraventricular-arrhythmia context")
	}
}

// A distance-1 ontological match (finding-site-of) is relevant without
// context: the intro's bronchial structure / asthma case.
func TestDirectRelationshipRelevant(t *testing.T) {
	ont := ontology.Figure2Fragment()
	corpus := xmltree.NewCorpus()
	doc, err := cda.GenerateFigure1(ont)
	if err != nil {
		t.Fatal(err)
	}
	corpus.Add(doc)
	o := NewOracle(ont)
	b := dil.NewBuilder(corpus, ont, ontoscore.StrategyRelationships, dil.DefaultParams())
	e := query.NewEngine(dil.NewIndex(), b, query.DefaultParams())
	kws := query.ParseQuery(`"bronchial structure" theophylline`)
	res := e.Search(kws, 5)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	j := o.JudgeResult(corpus, kws, res[0])
	if !j.Relevant {
		t.Fatalf("intro example judged irrelevant: %+v", j)
	}
	kj := j.PerKeyword[0]
	if kj.Literal {
		t.Error("bronchial structure should be an ontological match")
	}
	if kj.Distance > o.Horizon || kj.Distance < 1 {
		t.Errorf("distance = %d", kj.Distance)
	}
}

func TestCountRelevantCap(t *testing.T) {
	ont := genOntology(t)
	corpus := buildSVTAspirinCorpus(t, ont)
	o := NewOracle(ont)
	kws, res := searchWith(t, corpus, ont, ontoscore.StrategyNone, `aspirin medications`)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	// Duplicate the result list to exceed the cap.
	many := append(append([]query.Result{}, res...), res...)
	many = append(many, res...)
	if got := o.CountRelevant(corpus, kws, many, 2); got > 2 {
		t.Errorf("CountRelevant exceeded cap: %d", got)
	}
}

func TestJudgeResultDegenerate(t *testing.T) {
	ont := genOntology(t)
	corpus := xmltree.NewCorpus()
	o := NewOracle(ont)
	// Result pointing nowhere.
	j := o.JudgeResult(corpus, []query.Keyword{"asthma"}, query.Result{
		Root:    xmltree.Dewey{9},
		Matches: []query.Match{{ID: xmltree.Dewey{9, 0}}},
	})
	if j.Relevant {
		t.Error("unresolvable match judged relevant")
	}
	// Fewer matches than keywords.
	j = o.JudgeResult(corpus, []query.Keyword{"a", "b"}, query.Result{})
	if j.Relevant {
		t.Error("missing matches judged relevant")
	}
}

func TestNodeConceptEdgeCases(t *testing.T) {
	ont := genOntology(t)
	o := NewOracle(ont)
	// Node referencing an unknown system.
	n := &xmltree.Node{Tag: "value"}
	n.SetAttr("code", "195967001")
	n.SetAttr("codeSystem", "9.9.9.unknown")
	if got := o.nodeConcept(n); got != 0 {
		t.Errorf("foreign-system node resolved to %d", got)
	}
	// Node referencing a dangling code within the right system.
	n2 := &xmltree.Node{Tag: "value"}
	n2.SetAttr("code", "does-not-exist")
	n2.SetAttr("codeSystem", ont.SystemID)
	if got := o.nodeConcept(n2); got != 0 {
		t.Errorf("dangling code resolved to %d", got)
	}
	// Non-code node.
	if got := o.nodeConcept(&xmltree.Node{Tag: "title"}); got != 0 {
		t.Errorf("non-code node resolved to %d", got)
	}
}

// Package relevance simulates the domain-expert relevance judgments of
// the paper's Table I survey. The paper had a medical doctor mark up to
// five relevant results per query; reproducing that requires an oracle,
// which we derive from the generating model itself:
//
//   - A keyword matched literally in the result subtree is relevant.
//   - A keyword matched through the ontology is judged by the
//     ontological distance between the matched concept and the
//     keyword's own concepts: distance 1 (a direct clinical
//     relationship such as finding-site-of or treated-by, or a direct
//     subclass/superclass) is relevant on its own.
//   - A distance-2 match (e.g. a sibling drug under a shared class —
//     the acetaminophen/aspirin situation) is relevant only with
//     context support: the matched concept must be ontologically close
//     to some other keyword of the query. This reproduces the paper's
//     observation that mapping acetaminophen to aspirin is fine in a
//     pain-control context but wrong in a cardiology context.
//   - Anything farther is irrelevant (the paper: Taxonomy "could
//     return results where a query keyword is matched to a far
//     ancestor concept", which the expert rejected).
//
// A result is relevant iff every query keyword is relevant.
package relevance

import (
	"repro/internal/ontology"
	"repro/internal/query"
	"repro/internal/xmltree"
)

// Oracle judges results against one ontology.
type Oracle struct {
	ont *ontology.Ontology

	// Horizon is the maximum ontological distance at which a match can
	// be relevant (default 2).
	Horizon int
	// ContextHops is how close (in graph distance) a weak match must be
	// to another keyword's concepts to gain context support (default 2).
	ContextHops int
}

// NewOracle returns an oracle with the default horizons.
func NewOracle(ont *ontology.Ontology) *Oracle {
	return &Oracle{ont: ont, Horizon: 2, ContextHops: 2}
}

// Judgment explains one result's verdict.
type Judgment struct {
	Relevant bool
	// PerKeyword records each keyword's verdict in query order.
	PerKeyword []KeywordJudgment
}

// KeywordJudgment explains one keyword's verdict within a result.
type KeywordJudgment struct {
	Keyword  string
	Literal  bool // matched by text containment
	Distance int  // ontological distance of the match (-1 if n/a)
	Context  bool // needed and received context support
	Relevant bool
}

// JudgeResult evaluates one search result.
func (o *Oracle) JudgeResult(corpus *xmltree.Corpus, keywords []query.Keyword, r query.Result) Judgment {
	j := Judgment{Relevant: true, PerKeyword: make([]KeywordJudgment, len(keywords))}
	for i, kw := range keywords {
		kj := o.judgeKeyword(corpus, keywords, r, i, string(kw))
		j.PerKeyword[i] = kj
		if !kj.Relevant {
			j.Relevant = false
		}
	}
	return j
}

func (o *Oracle) judgeKeyword(corpus *xmltree.Corpus, keywords []query.Keyword, r query.Result, idx int, kw string) KeywordJudgment {
	kj := KeywordJudgment{Keyword: kw, Distance: -1}
	if idx >= len(r.Matches) {
		return kj
	}
	node := corpus.NodeAt(r.Matches[idx].ID)
	if node == nil {
		return kj
	}
	if xmltree.ContainsKeyword(node, kw) {
		kj.Literal = true
		kj.Relevant = true
		kj.Distance = 0
		return kj
	}
	matched := o.nodeConcept(node)
	if matched == 0 {
		return kj
	}
	dist := o.conceptKeywordDistance(matched, kw)
	kj.Distance = dist
	switch {
	case dist < 0 || dist > o.Horizon:
		kj.Relevant = false
	case dist <= 1:
		kj.Relevant = true
	default:
		// Weak match: needs context support from another keyword.
		kj.Context = o.hasContextSupport(matched, keywords, idx)
		kj.Relevant = kj.Context
	}
	return kj
}

// nodeConcept resolves the concept a node references (0 if none).
func (o *Oracle) nodeConcept(n *xmltree.Node) ontology.ConceptID {
	ref, ok := n.OntoRef()
	if !ok || ref.System != o.ont.SystemID {
		return 0
	}
	c, ok := o.ont.ByCode(ref.Code)
	if !ok {
		return 0
	}
	return c.ID
}

// conceptKeywordDistance is the smallest graph distance from the
// matched concept to any concept containing the keyword (-1 if the
// keyword names no concept or is unreachable).
func (o *Oracle) conceptKeywordDistance(matched ontology.ConceptID, kw string) int {
	best := -1
	for _, kc := range o.ont.ConceptsContaining(kw) {
		d := o.ont.GraphDistance(matched, kc)
		if d >= 0 && (best < 0 || d < best) {
			best = d
		}
	}
	return best
}

// hasContextSupport reports whether the matched concept is close to the
// concepts of some other query keyword.
func (o *Oracle) hasContextSupport(matched ontology.ConceptID, keywords []query.Keyword, idx int) bool {
	for i, other := range keywords {
		if i == idx {
			continue
		}
		for _, oc := range o.ont.ConceptsContaining(string(other)) {
			if d := o.ont.GraphDistance(matched, oc); d >= 0 && d <= o.ContextHops {
				return true
			}
		}
	}
	return false
}

// CountRelevant judges the top results and returns how many of the
// first max are relevant — the "user marks up to 5 results" protocol of
// Table I.
func (o *Oracle) CountRelevant(corpus *xmltree.Corpus, keywords []query.Keyword, results []query.Result, max int) int {
	if len(results) > max {
		results = results[:max]
	}
	n := 0
	for _, r := range results {
		if o.JudgeResult(corpus, keywords, r).Relevant {
			n++
		}
	}
	return n
}

package cda

import (
	"strings"
	"testing"

	"repro/internal/ontology"
	"repro/internal/xmltree"
)

// fuzzLimits keeps hostile inputs cheap: the extraction invariants do
// not depend on document size.
var fuzzLimits = xmltree.Limits{MaxBytes: 1 << 20, MaxDepth: 64}

// FuzzExtract feeds arbitrary XML through parse + every extraction
// entry point. Extraction must never panic, and repeated extraction
// over the same tree must be deterministic.
func FuzzExtract(f *testing.F) {
	// Seed with real generated documents alongside the checked-in
	// corpus, so coverage starts inside CDA structure rather than at
	// "not XML".
	ont, err := ontology.Generate(ontology.GenConfig{Seed: 3, ExtraConcepts: 20})
	if err != nil {
		f.Fatal(err)
	}
	g, err := NewGenerator(GenConfig{Seed: 3, NumDocuments: 2, ProblemsPerPatient: 2,
		MedicationsPerPatient: 2, ProceduresPerPatient: 1}, ont)
	if err != nil {
		f.Fatal(err)
	}
	for _, doc := range g.GenerateCorpus().Docs() {
		var sb strings.Builder
		if err := xmltree.WriteXML(&sb, doc.Root); err != nil {
			f.Fatal(err)
		}
		f.Add(sb.String())
	}
	fig1, err := GenerateFigure1(ont)
	if err != nil {
		f.Fatal(err)
	}
	var sb strings.Builder
	if err := xmltree.WriteXML(&sb, fig1.Root); err != nil {
		f.Fatal(err)
	}
	f.Add(sb.String())

	f.Fuzz(func(t *testing.T, input string) {
		doc, err := xmltree.ParseLimited(strings.NewReader(input), fuzzLimits)
		if err != nil {
			return
		}
		doc.Name = "fuzz"

		secs := Sections(doc)
		meds := Medications(doc)
		probs := Problems(doc)
		pat, patOK := PatientOf(doc)
		sum := Summary(doc)
		if pat2, ok2 := PatientOf(doc); ok2 != patOK || pat2 != pat {
			t.Fatal("PatientOf not deterministic")
		}

		// Determinism: a second pass over the identical tree agrees.
		if got := len(Sections(doc)); got != len(secs) {
			t.Fatalf("Sections not deterministic: %d then %d", len(secs), got)
		}
		if got := len(Medications(doc)); got != len(meds) {
			t.Fatalf("Medications not deterministic: %d then %d", len(meds), got)
		}
		if got := len(Problems(doc)); got != len(probs) {
			t.Fatalf("Problems not deterministic: %d then %d", len(probs), got)
		}
		if got := Summary(doc); got != sum {
			t.Fatalf("Summary not deterministic: %q then %q", sum, got)
		}
		// Every section found by code lookup must be in the full list.
		for _, s := range secs {
			if s.Code == "" {
				continue
			}
			if _, ok := SectionByCode(doc, s.Code); !ok {
				t.Fatalf("section %q found by walk but not by code", s.Code)
			}
		}
	})
}

package cda

import (
	"strings"

	"repro/internal/xmltree"
)

// Structured read access to CDA documents: the inverse of the builder.
// These accessors let applications consume search results clinically
// (which drugs, which problems, which patient) instead of walking raw
// XML.

// Section is one titled document section.
type Section struct {
	Code  string // LOINC section code
	Title string
	Node  *xmltree.Node
}

// Sections lists every section of the document in order, including
// nested subsections.
func Sections(doc *xmltree.Document) []Section {
	var out []Section
	if doc.Root == nil {
		return nil
	}
	doc.Root.Walk(func(n *xmltree.Node) bool {
		if n.Tag != "section" {
			return true
		}
		s := Section{Node: n}
		for _, c := range n.Children {
			switch c.Tag {
			case "code":
				s.Code, _ = c.Attr("code")
			case "title":
				s.Title = c.Text
			}
		}
		out = append(out, s)
		return true
	})
	return out
}

// SectionByCode returns the first section with the given LOINC code.
func SectionByCode(doc *xmltree.Document, code string) (Section, bool) {
	for _, s := range Sections(doc) {
		if s.Code == code {
			return s, true
		}
	}
	return Section{}, false
}

// MedicationEntry is one SubstanceAdministration of the medications
// section.
type MedicationEntry struct {
	Drug     xmltree.OntoRef
	DrugName string
	DoseText string
	Node     *xmltree.Node
}

// Medications extracts every medication entry of the document.
func Medications(doc *xmltree.Document) []MedicationEntry {
	var out []MedicationEntry
	if doc.Root == nil {
		return nil
	}
	doc.Root.Walk(func(n *xmltree.Node) bool {
		if n.Tag != "SubstanceAdministration" {
			return true
		}
		e := MedicationEntry{Node: n}
		if code := n.Find(func(v *xmltree.Node) bool {
			return v.Tag == "code" && v.Parent != nil && v.Parent.Tag == "manufacturedLabeledDrug"
		}); code != nil {
			e.Drug, _ = code.OntoRef()
			e.DrugName, _ = code.Attr("displayName")
		}
		if text := n.Find(func(v *xmltree.Node) bool { return v.Tag == "text" }); text != nil {
			e.DoseText = text.Text
			if e.DrugName == "" {
				if content := text.Find(func(v *xmltree.Node) bool { return v.Tag == "content" }); content != nil {
					e.DrugName = content.Text
				}
			}
		}
		out = append(out, e)
		return false // entries do not nest
	})
	return out
}

// ProblemEntry is one coded observation value (a problem-list or
// findings entry).
type ProblemEntry struct {
	Ref     xmltree.OntoRef
	Display string
	Node    *xmltree.Node
}

// Problems extracts the coded values of every Observation in the
// document (problem-list entries and coded findings).
func Problems(doc *xmltree.Document) []ProblemEntry {
	var out []ProblemEntry
	if doc.Root == nil {
		return nil
	}
	doc.Root.Walk(func(n *xmltree.Node) bool {
		if n.Tag != "value" || n.Parent == nil || n.Parent.Tag != "Observation" {
			return true
		}
		ref, ok := n.OntoRef()
		if !ok {
			return true
		}
		display, _ := n.Attr("displayName")
		out = append(out, ProblemEntry{Ref: ref, Display: display, Node: n})
		return true
	})
	return out
}

// Patient is the record target's demographic header.
type Patient struct {
	Given     string
	Family    string
	Gender    string
	BirthTime string
}

// PatientOf extracts the record target, if present.
func PatientOf(doc *xmltree.Document) (Patient, bool) {
	if doc.Root == nil {
		return Patient{}, false
	}
	pat := doc.Root.Find(func(n *xmltree.Node) bool { return n.Tag == "patientPatient" })
	if pat == nil {
		return Patient{}, false
	}
	var p Patient
	if name := pat.Find(func(n *xmltree.Node) bool { return n.Tag == "name" }); name != nil {
		for _, c := range name.Children {
			switch c.Tag {
			case "given":
				p.Given = c.Text
			case "family":
				p.Family = c.Text
			}
		}
	}
	if g := pat.Find(func(n *xmltree.Node) bool { return n.Tag == "administrativeGenderCode" }); g != nil {
		p.Gender, _ = g.Attr("code")
	}
	if b := pat.Find(func(n *xmltree.Node) bool { return n.Tag == "birthTime" }); b != nil {
		p.BirthTime, _ = b.Attr("value")
	}
	return p, true
}

// Summary renders a one-line clinical overview of the document, useful
// in result listings.
func Summary(doc *xmltree.Document) string {
	var b strings.Builder
	if p, ok := PatientOf(doc); ok {
		b.WriteString(p.Given + " " + p.Family)
	}
	problems := Problems(doc)
	if len(problems) > 0 {
		names := make([]string, 0, len(problems))
		seen := map[string]bool{}
		for _, pr := range problems {
			if pr.Display != "" && !seen[pr.Display] {
				seen[pr.Display] = true
				names = append(names, pr.Display)
			}
		}
		if len(names) > 3 {
			names = names[:3]
		}
		if b.Len() > 0 {
			b.WriteString(": ")
		}
		b.WriteString(strings.Join(names, ", "))
	}
	if meds := Medications(doc); len(meds) > 0 {
		b.WriteString(" (")
		for i, m := range meds {
			if i > 2 {
				b.WriteString(", …")
				break
			}
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(m.DrugName)
		}
		b.WriteString(")")
	}
	return b.String()
}

package cda

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ontology"
	"repro/internal/xmltree"
)

func testOntology(t *testing.T) *ontology.Ontology {
	t.Helper()
	ont, err := ontology.Generate(ontology.GenConfig{
		Seed: 11, ExtraConcepts: 150, SynonymProb: 0.3,
		MultiParentProb: 0.1, RelationshipsPerDisorder: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ont
}

func TestBuilderShape(t *testing.T) {
	ont := testOntology(t)
	b := NewBuilder("c001", "Ada", "Lovelace")
	b.SetPatient("Pat", "Ent", "F", "20010101")
	sec := b.Section(LOINCMedications, "Medications")
	asthma, _ := ont.ByCode(ontology.CodeAsthma)
	meds, _ := ont.ByCode(ontology.CodeMedications)
	theo, _ := ont.ByCode(ontology.CodeTheophylline)
	AddObservation(sec, ont, meds, asthma)
	AddMedication(sec, ont, theo, "10 mg daily")
	doc := b.Document("t")
	if err := Validate(doc); err != nil {
		t.Fatal(err)
	}
	if doc.Root.Tag != "ClinicalDocument" {
		t.Error("wrong root")
	}
	// The value node must be a code node referencing asthma.
	val := doc.Root.Find(func(n *xmltree.Node) bool {
		v, _ := n.Attr("displayName")
		return v == "Asthma"
	})
	if val == nil {
		t.Fatal("asthma code node missing")
	}
	ref, ok := val.OntoRef()
	if !ok || ref.Code != ontology.CodeAsthma || ref.System != ont.SystemID {
		t.Errorf("ref = %v %v", ref, ok)
	}
	// Medication free text present.
	txt := doc.Root.Find(func(n *xmltree.Node) bool { return n.Tag == "content" })
	if txt == nil || txt.Text != "Theophylline" {
		t.Errorf("content = %+v", txt)
	}
}

func TestValidateErrors(t *testing.T) {
	if err := Validate(&xmltree.Document{Root: &xmltree.Node{Tag: "x"}}); err == nil {
		t.Error("non-CDA root accepted")
	}
	root := &xmltree.Node{Tag: "ClinicalDocument"}
	if err := Validate(&xmltree.Document{Root: root}); err == nil {
		t.Error("document without sections accepted")
	}
	b := NewBuilder("c", "A", "B")
	sec := b.Section(LOINCProblems, "Problems")
	bad := sec.NewChild("value")
	bad.SetAttr("codeSystem", "2.16")
	if err := Validate(b.Document("t")); err == nil {
		t.Error("codeSystem without code accepted")
	}
}

func TestGenerateDocumentShape(t *testing.T) {
	ont := testOntology(t)
	g, err := NewGenerator(GenConfig{Seed: 5, NumDocuments: 1, ProblemsPerPatient: 3, MedicationsPerPatient: 3, ProceduresPerPatient: 1}, ont)
	if err != nil {
		t.Fatal(err)
	}
	doc := g.GenerateDocument(0)
	if err := Validate(doc); err != nil {
		t.Fatal(err)
	}
	// Must carry ontological references resolvable in the ontology.
	refs := 0
	doc.Root.Walk(func(n *xmltree.Node) bool {
		if ref, ok := n.OntoRef(); ok && ref.System == ont.SystemID {
			if _, found := ont.ByCode(ref.Code); !found {
				t.Errorf("dangling ontological reference %v", ref)
			}
			refs++
		}
		return true
	})
	if refs < 5 {
		t.Errorf("document has only %d ontological references", refs)
	}
	// Section titles present.
	titles := map[string]bool{}
	doc.Root.Walk(func(n *xmltree.Node) bool {
		if n.Tag == "title" {
			titles[n.Text] = true
		}
		return true
	})
	for _, want := range []string{"Problems", "Medications", "Vital Signs"} {
		if !titles[want] {
			t.Errorf("section %q missing (have %v)", want, titles)
		}
	}
}

func TestGenerateCorpusDeterministic(t *testing.T) {
	ont := testOntology(t)
	cfg := GenConfig{Seed: 8, NumDocuments: 10, ProblemsPerPatient: 3, MedicationsPerPatient: 3, ProceduresPerPatient: 1}
	g1, err := NewGenerator(cfg, ont)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(cfg, ont)
	if err != nil {
		t.Fatal(err)
	}
	c1 := g1.GenerateCorpus()
	c2 := g2.GenerateCorpus()
	if c1.Len() != 10 || c2.Len() != 10 {
		t.Fatalf("corpus sizes %d/%d", c1.Len(), c2.Len())
	}
	for i := 0; i < 10; i++ {
		var b1, b2 bytes.Buffer
		if err := xmltree.WriteXML(&b1, c1.Docs()[i].Root); err != nil {
			t.Fatal(err)
		}
		if err := xmltree.WriteXML(&b2, c2.Docs()[i].Root); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("document %d differs across same-seed runs", i)
		}
	}
	stats := c1.Stats()
	if stats.AvgCodeRef < 5 {
		t.Errorf("average references per document = %.1f, too sparse", stats.AvgCodeRef)
	}
}

func TestDrugDisorderCooccurrence(t *testing.T) {
	// Medications should frequently be treated-by targets of the
	// patient's problems, giving the corpus clinically coherent
	// co-occurrence.
	ont := testOntology(t)
	g, err := NewGenerator(GenConfig{Seed: 3, NumDocuments: 40, ProblemsPerPatient: 3, MedicationsPerPatient: 4, ProceduresPerPatient: 1}, ont)
	if err != nil {
		t.Fatal(err)
	}
	corpus := g.GenerateCorpus()
	related, total := 0, 0
	for _, doc := range corpus.Docs() {
		var problems, drugs []ontology.ConceptID
		doc.Root.Walk(func(n *xmltree.Node) bool {
			if ref, ok := n.OntoRef(); ok {
				if c, found := ont.ByCode(ref.Code); found {
					switch n.Parent.Tag {
					case "Observation":
						if n.Tag == "value" {
							problems = append(problems, c.ID)
						}
					case "manufacturedLabeledDrug":
						drugs = append(drugs, c.ID)
					}
				}
			}
			return true
		})
		for _, d := range drugs {
			total++
			for _, p := range problems {
				isTreatment := false
				for _, e := range ont.Out(p) {
					if e.Type == ontology.TreatedBy && e.To == d {
						isTreatment = true
					}
				}
				if isTreatment {
					related++
					break
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no drugs generated")
	}
	if ratio := float64(related) / float64(total); ratio < 0.3 {
		t.Errorf("only %.0f%% of prescriptions relate to a problem", 100*ratio)
	}
}

func TestGenerateFigure1(t *testing.T) {
	ont := ontology.Figure2Fragment()
	doc, err := GenerateFigure1(ont)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(doc); err != nil {
		t.Fatal(err)
	}
	xml := xmltree.XMLString(doc.Root)
	for _, want := range []string{"Asthma", "Theophylline", "Albuterol", "Bronchitis", "Medications", "Vital Signs"} {
		if !strings.Contains(xml, want) {
			t.Errorf("figure-1 document missing %q", want)
		}
	}
	// The phrase "Bronchial structure" must NOT appear: the intro
	// example depends on it being reachable only via the ontology.
	if strings.Contains(strings.ToLower(xml), "bronchial structure") {
		t.Error("figure-1 document must not literally contain 'bronchial structure'")
	}
	// Nested albuterol value inside bronchitis value, as in Figure 1.
	bronch := doc.Root.Find(func(n *xmltree.Node) bool {
		v, _ := n.Attr("displayName")
		return v == "Bronchitis"
	})
	if bronch == nil || len(bronch.Children) == 0 {
		t.Fatal("nested albuterol value missing")
	}
	if v, _ := bronch.Children[0].Attr("displayName"); v != "Albuterol" {
		t.Errorf("nested value = %q", v)
	}
	// Missing concepts produce an error, not a panic.
	empty := ontology.New("s", "empty")
	if _, err := GenerateFigure1(empty); err == nil {
		t.Error("GenerateFigure1 with empty ontology should fail")
	}
}

func TestGeneratorErrors(t *testing.T) {
	empty := ontology.New("s", "empty")
	if _, err := NewGenerator(DefaultGenConfig(), empty); err == nil {
		t.Error("generator over empty ontology should fail")
	}
}

// Package cda models HL7 Clinical Document Architecture (CDA) Release 2
// documents as XOntoRank consumes them, and generates a synthetic EMR
// corpus with the shape of the paper's evaluation data (Section VII: CDA
// documents converted from an anonymized cardiac-clinic EMR database,
// with ontological references inserted for every value matching a
// SNOMED concept).
//
// Only the structural subset relevant to information discovery is
// modeled: the header (author, record target), the structured body, and
// the clinical-statement entries (Observation, SubstanceAdministration,
// Procedure) whose code nodes carry the ontological references.
package cda

import (
	"fmt"

	"repro/internal/ontology"
	"repro/internal/xmltree"
)

// LOINCSystemID is the coding system OID for LOINC section codes, as in
// the paper's Figure 1.
const LOINCSystemID = "2.16.840.1.113883.6.1"

// LOINC section codes used by the generator (the Medications and
// Physical Examination codes are those of Figure 1).
const (
	LOINCMedications  = "10160-0"
	LOINCProblems     = "11450-4"
	LOINCPhysicalExam = "29545-1"
	LOINCVitalSigns   = "8716-3"
	LOINCProcedures   = "47519-4"
	LOINCHospCourse   = "8648-8"
)

// Builder assembles one ClinicalDocument tree.
type Builder struct {
	doc  *xmltree.Node
	body *xmltree.Node
}

// NewBuilder starts a ClinicalDocument with the given document id
// extension (e.g. "c266") and authoring clinician name.
func NewBuilder(idExt, authorGiven, authorFamily string) *Builder {
	root := &xmltree.Node{Tag: "ClinicalDocument"}
	root.SetAttr("templateId", "2.16.840.1.113883.3.27.1776")
	id := root.NewChild("id")
	id.SetAttr("extension", idExt)
	id.SetAttr("root", "2.16.840.1.113883.3.933")
	author := root.NewChild("author")
	person := author.NewChild("assignedAuthor").NewChild("assignedPerson")
	name := person.NewChild("name")
	name.NewChild("given").Text = authorGiven
	name.NewChild("family").Text = authorFamily
	name.NewChild("suffix").Text = "MD"
	return &Builder{doc: root}
}

// SetPatient fills the recordTarget header block.
func (b *Builder) SetPatient(given, family, gender, birthTime string) {
	rt := b.doc.NewChild("recordTarget")
	role := rt.NewChild("patientRole")
	pat := role.NewChild("patientPatient")
	name := pat.NewChild("name")
	name.NewChild("given").Text = given
	name.NewChild("family").Text = family
	g := pat.NewChild("administrativeGenderCode")
	g.SetAttr("code", gender)
	g.SetAttr("codeSystem", "2.16.840.1.113883.5.1")
	bt := pat.NewChild("birthTime")
	bt.SetAttr("value", birthTime)
}

// body returns (creating on demand) the StructuredBody element.
func (b *Builder) structuredBody() *xmltree.Node {
	if b.body == nil {
		b.body = b.doc.NewChild("component").NewChild("StructuredBody")
	}
	return b.body
}

// Section starts a new titled section with a LOINC code and returns its
// node so entries can be appended.
func (b *Builder) Section(loincCode, title string) *xmltree.Node {
	sec := b.structuredBody().NewChild("component").NewChild("section")
	code := sec.NewChild("code")
	code.SetAttr("code", loincCode)
	code.SetAttr("codeSystem", LOINCSystemID)
	code.SetAttr("codeSystemName", "LOINC")
	sec.NewChild("title").Text = title
	return sec
}

// Subsection nests a titled section within a parent section (as the
// Vital Signs subsection nests within Physical Examination in Figure 1).
func Subsection(parent *xmltree.Node, loincCode, title string) *xmltree.Node {
	sec := parent.NewChild("component").NewChild("section")
	code := sec.NewChild("code")
	code.SetAttr("code", loincCode)
	code.SetAttr("codeSystem", LOINCSystemID)
	code.SetAttr("codeSystemName", "LOINC")
	sec.NewChild("title").Text = title
	return sec
}

// conceptCode fills an element with the code/codeSystem/displayName
// attribute triple referencing concept c of ontology o.
func conceptCode(n *xmltree.Node, o *ontology.Ontology, c *ontology.Concept) {
	n.SetAttr("code", c.Code)
	n.SetAttr("codeSystem", o.SystemID)
	n.SetAttr("codeSystemName", o.Name)
	n.SetAttr("displayName", c.Preferred)
}

// AddObservation appends an Observation entry to a section: an
// observation-kind code node plus a value code node referencing the
// observed concept, mirroring Figure 1 lines 36-41.
func AddObservation(sec *xmltree.Node, o *ontology.Ontology, kind, value *ontology.Concept) *xmltree.Node {
	obs := sec.NewChild("entry").NewChild("Observation")
	code := obs.NewChild("code")
	conceptCode(code, o, kind)
	val := obs.NewChild("value")
	conceptCode(val, o, value)
	return obs
}

// AddMedication appends a SubstanceAdministration entry: dosing free
// text plus a manufacturedLabeledDrug code node referencing the drug
// concept, mirroring Figure 1 lines 48-56.
func AddMedication(sec *xmltree.Node, o *ontology.Ontology, drug *ontology.Concept, doseText string) *xmltree.Node {
	return AddMedicationWithID(sec, o, drug, doseText, "")
}

// AddMedicationWithID is AddMedication, additionally anchoring the drug
// name content with an XML ID so other elements can point at it with
// <reference value="..."/> (Figure 1's content ID="m1" idiom).
func AddMedicationWithID(sec *xmltree.Node, o *ontology.Ontology, drug *ontology.Concept, doseText, contentID string) *xmltree.Node {
	sub := sec.NewChild("entry").NewChild("SubstanceAdministration")
	text := sub.NewChild("text")
	content := text.NewChild("content")
	content.Text = drug.Preferred
	if contentID != "" {
		content.SetAttr("ID", contentID)
	}
	text.Text = doseText
	code := sub.NewChild("consumable").
		NewChild("manufacturedProduct").
		NewChild("manufacturedLabeledDrug").
		NewChild("code")
	conceptCode(code, o, drug)
	return sub
}

// AddOriginalTextReference attaches an <originalText><reference
// value="..."/></originalText> child to a coded value, pointing at a
// content anchor elsewhere in the document (Figure 1 line 40).
func AddOriginalTextReference(value *xmltree.Node, contentID string) *xmltree.Node {
	ref := value.NewChild("originalText").NewChild("reference")
	ref.SetAttr("value", contentID)
	return ref
}

// AddProcedure appends a Procedure entry referencing a procedure
// concept.
func AddProcedure(sec *xmltree.Node, o *ontology.Ontology, proc *ontology.Concept, narrative string) *xmltree.Node {
	p := sec.NewChild("entry").NewChild("Procedure")
	code := p.NewChild("code")
	conceptCode(code, o, proc)
	if narrative != "" {
		p.NewChild("text").Text = narrative
	}
	return p
}

// AddVitalSign appends a coded physical-quantity observation (Figure 1
// lines 76-81).
func AddVitalSign(sec *xmltree.Node, o *ontology.Ontology, kind *ontology.Concept, value, unit string) *xmltree.Node {
	obs := sec.NewChild("entry").NewChild("Observation")
	code := obs.NewChild("code")
	conceptCode(code, o, kind)
	val := obs.NewChild("value")
	val.SetAttr("value", value)
	val.SetAttr("unit", unit)
	return obs
}

// AddNarrative appends a free-text paragraph to a section.
func AddNarrative(sec *xmltree.Node, text string) *xmltree.Node {
	t := sec.NewChild("text")
	t.Text = text
	return t
}

// Document finalizes and returns the assembled tree wrapped as an
// xmltree document.
func (b *Builder) Document(name string) *xmltree.Document {
	return &xmltree.Document{Root: b.doc, Name: name}
}

// Validate performs structural sanity checks on a CDA tree: a
// ClinicalDocument root, at least one section in the structured body,
// and code attributes present wherever codeSystem appears.
func Validate(doc *xmltree.Document) error {
	if doc.Root == nil || doc.Root.Tag != "ClinicalDocument" {
		return fmt.Errorf("cda: root element must be ClinicalDocument")
	}
	sections := 0
	var bad *xmltree.Node
	doc.Root.Walk(func(n *xmltree.Node) bool {
		if n.Tag == "section" {
			sections++
		}
		if _, ok := n.Attr("codeSystem"); ok {
			if v, okc := n.Attr("code"); !okc || v == "" {
				bad = n
			}
		}
		return true
	})
	if bad != nil {
		return fmt.Errorf("cda: element %s has codeSystem without code", bad.Path())
	}
	if sections == 0 {
		return fmt.Errorf("cda: document has no sections")
	}
	return nil
}

package cda

import (
	"fmt"
	"math/rand"

	"repro/internal/ontology"
	"repro/internal/xmltree"
)

// GenConfig configures the synthetic EMR corpus generator.
type GenConfig struct {
	// Seed makes the corpus deterministic.
	Seed int64
	// NumDocuments is the number of patient records to generate (the
	// paper's corpus had 2,162; tests use far fewer).
	NumDocuments int
	// ProblemsPerPatient is the expected number of disorders per record.
	ProblemsPerPatient int
	// MedicationsPerPatient is the expected number of medication entries.
	MedicationsPerPatient int
	// ProceduresPerPatient is the expected number of procedure entries.
	ProceduresPerPatient int
}

// DefaultGenConfig produces records of roughly the paper's per-document
// density when combined with the default synthetic ontology.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Seed:                  1,
		NumDocuments:          200,
		ProblemsPerPatient:    4,
		MedicationsPerPatient: 4,
		ProceduresPerPatient:  2,
	}
}

var (
	givenNames = []string{
		"Ana", "Ben", "Carla", "Diego", "Elena", "Felix", "Grace", "Hugo",
		"Iris", "Jonas", "Kira", "Luis", "Mara", "Nico", "Olga", "Pavel",
		"Rosa", "Samir", "Tessa", "Viktor",
	}
	familyNames = []string{
		"Alvarez", "Brooks", "Chen", "Dimitrov", "Eriksen", "Fernandez",
		"Gupta", "Hansen", "Ivanova", "Jensen", "Kowalski", "Lindgren",
		"Moreau", "Nakamura", "Olsen", "Petrov", "Quintero", "Rossi",
		"Schmidt", "Tanaka",
	}
	doseTemplates = []string{
		"%d mg every other day. Stop if temperature is above 103F.",
		"%d mg twice daily with meals.",
		"%d mg once daily at bedtime.",
		"%d mg every 6 hours as needed.",
		"%d mg weekly, taper after four weeks.",
	}
	narrativeTemplates = []string{
		"Patient presented with %s. Started on %s with good response.",
		"History of %s. Continues %s per cardiology.",
		"Admitted for evaluation of %s; %s initiated in the unit.",
		"Follow-up for %s, stable on %s.",
	}
)

// Generator produces synthetic CDA documents whose code nodes reference
// concepts of the supplied ontology. Each patient gets a condition
// profile (a set of disorders) and medications drawn preferentially
// from the treated-by targets of those disorders, so that drug/disorder
// co-occurrence mirrors clinical data.
type Generator struct {
	cfg GenConfig
	ont *ontology.Ontology
	r   *rand.Rand

	disorders  []*ontology.Concept
	drugs      []*ontology.Concept
	procedures []*ontology.Concept
	vitals     []*ontology.Concept
	medsKind   *ontology.Concept
}

// NewGenerator prepares a generator over the given ontology. The
// ontology must contain the curated axis concepts (it is normally the
// output of ontology.Generate).
func NewGenerator(cfg GenConfig, ont *ontology.Ontology) (*Generator, error) {
	g := &Generator{cfg: cfg, ont: ont, r: rand.New(rand.NewSource(cfg.Seed))}
	axis := func(code string) (*ontology.Concept, error) {
		c, ok := ont.ByCode(code)
		if !ok {
			return nil, fmt.Errorf("cda: ontology lacks axis concept %s", code)
		}
		return c, nil
	}
	finding, err := axis(ontology.CodeClinicalFinding)
	if err != nil {
		return nil, err
	}
	pharma, err := axis(ontology.CodePharmaProduct)
	if err != nil {
		return nil, err
	}
	proc, err := axis(ontology.CodeProcedure)
	if err != nil {
		return nil, err
	}
	meds, ok := ont.ByCode(ontology.CodeMedications)
	if !ok {
		return nil, fmt.Errorf("cda: ontology lacks Medications concept")
	}
	g.medsKind = meds
	for _, id := range ont.DescendantsOf(finding.ID) {
		c := ont.Concept(id)
		if c.Code == ontology.CodeMedications {
			continue // the observation-kind concept, not a disorder
		}
		g.disorders = append(g.disorders, c)
	}
	for _, id := range ont.DescendantsOf(pharma.ID) {
		c := ont.Concept(id)
		if c.Code == ontology.CodeMedications {
			continue
		}
		g.drugs = append(g.drugs, c)
	}
	for _, id := range ont.DescendantsOf(proc.ID) {
		g.procedures = append(g.procedures, ont.Concept(id))
	}
	if len(g.disorders) == 0 || len(g.drugs) == 0 {
		return nil, fmt.Errorf("cda: ontology has no disorders or no drugs")
	}
	// Vital-sign kinds: reuse a few stable finding concepts if present.
	for _, pref := range []string{"Fever", "Pain"} {
		if c := ont.ByPreferred(pref); c != nil {
			g.vitals = append(g.vitals, c)
		}
	}
	if len(g.vitals) == 0 {
		g.vitals = g.disorders[:1]
	}
	return g, nil
}

// pickDisorder draws from a concentrated case-mix: half the draws come
// from the "common conditions" head of the disorder pool (the curated
// clinical core — a specialty clinic sees the same conditions over and
// over; the paper's corpus came from one cardiac clinic), the rest
// uniformly from the full pool. This gives the corpus realistic keyword
// co-occurrence: common disorder/treatment pairs appear literally in
// many records, as they do in real EMR data.
func (g *Generator) pickDisorder() *ontology.Concept {
	head := len(g.disorders)
	if head > 40 {
		head = 40
	}
	if g.r.Float64() < 0.5 {
		return g.disorders[g.r.Intn(head)]
	}
	return g.disorders[g.r.Intn(len(g.disorders))]
}

func (g *Generator) pickDrug() *ontology.Concept {
	return g.drugs[g.r.Intn(len(g.drugs))]
}

// drugFor prefers a drug related to the disorder by a treated-by edge;
// falls back to a random drug.
func (g *Generator) drugFor(dis *ontology.Concept) *ontology.Concept {
	var treats []*ontology.Concept
	for _, e := range g.ont.Out(dis.ID) {
		if e.Type == ontology.TreatedBy {
			treats = append(treats, g.ont.Concept(e.To))
		}
	}
	if len(treats) > 0 && g.r.Float64() < 0.8 {
		return treats[g.r.Intn(len(treats))]
	}
	return g.pickDrug()
}

func atLeastOne(r *rand.Rand, mean int) int {
	if mean <= 1 {
		return 1
	}
	return 1 + r.Intn(2*mean-1)
}

// GenerateDocument builds one synthetic patient record.
func (g *Generator) GenerateDocument(n int) *xmltree.Document {
	r := g.r
	b := NewBuilder(
		fmt.Sprintf("c%04d", n),
		givenNames[r.Intn(len(givenNames))],
		familyNames[r.Intn(len(familyNames))],
	)
	gender := "M"
	if r.Intn(2) == 0 {
		gender = "F"
	}
	b.SetPatient(
		givenNames[r.Intn(len(givenNames))],
		familyNames[r.Intn(len(familyNames))],
		gender,
		fmt.Sprintf("%04d%02d%02d", 1990+r.Intn(20), 1+r.Intn(12), 1+r.Intn(28)),
	)

	// Condition profile drives the whole record.
	nProblems := atLeastOne(r, g.cfg.ProblemsPerPatient)
	profile := make([]*ontology.Concept, 0, nProblems)
	for i := 0; i < nProblems; i++ {
		profile = append(profile, g.pickDisorder())
	}

	problems := b.Section(LOINCProblems, "Problems")
	for _, dis := range profile {
		AddObservation(problems, g.ont, g.medsKind, dis)
	}

	meds := b.Section(LOINCMedications, "Medications")
	nMeds := atLeastOne(r, g.cfg.MedicationsPerPatient)
	var prescribed []*ontology.Concept
	for i := 0; i < nMeds; i++ {
		dis := profile[r.Intn(len(profile))]
		drug := g.drugFor(dis)
		prescribed = append(prescribed, drug)
		dose := fmt.Sprintf(doseTemplates[r.Intn(len(doseTemplates))], 5*(1+r.Intn(30)))
		// Anchor the drug-name content (content ID="mN") so other
		// elements can reference it, as in Figure 1.
		AddMedicationWithID(meds, g.ont, drug, dose, fmt.Sprintf("m%d", i))
	}

	course := b.Section(LOINCHospCourse, "Hospital Course")
	dis := profile[r.Intn(len(profile))]
	drugIdx := r.Intn(len(prescribed))
	narrative := AddNarrative(course, fmt.Sprintf(
		narrativeTemplates[r.Intn(len(narrativeTemplates))],
		dis.Preferred, prescribed[drugIdx].Preferred))
	// The narrative cites the medication entry through an ID-IDREF
	// reference (the CDA originalText idiom), giving the corpus the
	// hyperlink edges ElemRank exploits.
	ref := narrative.NewChild("reference")
	ref.SetAttr("value", fmt.Sprintf("m%d", drugIdx))

	if len(g.procedures) > 0 {
		procs := b.Section(LOINCProcedures, "Procedures")
		nProcs := atLeastOne(r, g.cfg.ProceduresPerPatient)
		for i := 0; i < nProcs; i++ {
			p := g.procedures[r.Intn(len(g.procedures))]
			AddProcedure(procs, g.ont, p, "")
		}
	}

	exam := b.Section(LOINCPhysicalExam, "Physical Examination")
	vs := Subsection(exam, LOINCVitalSigns, "Vital Signs")
	AddVitalSign(vs, g.ont, g.vitals[r.Intn(len(g.vitals))],
		fmt.Sprintf("%.1f", 36.0+r.Float64()*3), "C")

	return b.Document(fmt.Sprintf("patient-%04d", n))
}

// GenerateCorpus builds the configured number of records into a corpus.
func (g *Generator) GenerateCorpus() *xmltree.Corpus {
	corpus := xmltree.NewCorpus()
	for i := 0; i < g.cfg.NumDocuments; i++ {
		corpus.Add(g.GenerateDocument(i))
	}
	return corpus
}

// GenerateFigure1 reproduces the paper's Figure 1 document (condensed):
// the asthma/theophylline record the introduction's example query is
// answered from. It requires the curated respiratory concepts.
func GenerateFigure1(ont *ontology.Ontology) (*xmltree.Document, error) {
	need := func(code string) (*ontology.Concept, error) {
		c, ok := ont.ByCode(code)
		if !ok {
			return nil, fmt.Errorf("cda: ontology lacks concept %s", code)
		}
		return c, nil
	}
	meds, err := need(ontology.CodeMedications)
	if err != nil {
		return nil, err
	}
	asthma, err := need(ontology.CodeAsthma)
	if err != nil {
		return nil, err
	}
	bronchitis, err := need(ontology.CodeBronchitis)
	if err != nil {
		return nil, err
	}
	albuterol, err := need(ontology.CodeAlbuterol)
	if err != nil {
		return nil, err
	}
	theo, err := need(ontology.CodeTheophylline)
	if err != nil {
		return nil, err
	}

	b := NewBuilder("c266", "Juan", "Woodblack")
	b.SetPatient("FirstName", "LastName", "M", "19700312")
	sec := b.Section(LOINCMedications, "Medications")
	asthmaObs := AddObservation(sec, ont, meds, asthma)
	// Figure 1 line 40: the asthma value's originalText references the
	// theophylline content anchor (ID m1).
	AddOriginalTextReference(asthmaObs.Children[1], "m1")
	obs := AddObservation(sec, ont, meds, bronchitis)
	// Figure 1 nests an albuterol value inside the bronchitis value.
	val := obs.Children[1]
	inner := val.NewChild("value")
	inner.SetAttr("code", albuterol.Code)
	inner.SetAttr("codeSystem", ont.SystemID)
	inner.SetAttr("displayName", albuterol.Preferred)
	AddMedicationWithID(sec, ont, theo,
		"20 mg every other day, alternating with 18 mg every other day. Stop if temperature is above 103F.",
		"m1")

	exam := b.Section(LOINCPhysicalExam, "Physical Examination")
	vs := Subsection(exam, LOINCVitalSigns, "Vital Signs")
	AddNarrative(vs, "Temperature 36.9 C (98.5 F) Pulse 86 / minute")

	return b.Document("figure-1"), nil
}

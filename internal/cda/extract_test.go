package cda

import (
	"strings"
	"testing"

	"repro/internal/ontology"
	"repro/internal/xmltree"
)

func figure1Doc(t *testing.T) *xmltree.Document {
	t.Helper()
	ont := ontology.Figure2Fragment()
	doc, err := GenerateFigure1(ont)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestSectionsExtraction(t *testing.T) {
	doc := figure1Doc(t)
	secs := Sections(doc)
	if len(secs) != 3 { // Medications, Physical Examination, Vital Signs
		t.Fatalf("sections = %d", len(secs))
	}
	titles := map[string]string{}
	for _, s := range secs {
		titles[s.Title] = s.Code
		if s.Node == nil {
			t.Error("nil section node")
		}
	}
	if titles["Medications"] != LOINCMedications {
		t.Errorf("medications code = %q", titles["Medications"])
	}
	if titles["Vital Signs"] != LOINCVitalSigns {
		t.Errorf("vital signs code = %q", titles["Vital Signs"])
	}
	sec, ok := SectionByCode(doc, LOINCMedications)
	if !ok || sec.Title != "Medications" {
		t.Errorf("SectionByCode = %+v, %v", sec, ok)
	}
	if _, ok := SectionByCode(doc, "0000-0"); ok {
		t.Error("unknown section code resolved")
	}
}

func TestMedicationsExtraction(t *testing.T) {
	doc := figure1Doc(t)
	meds := Medications(doc)
	if len(meds) != 1 {
		t.Fatalf("medications = %d", len(meds))
	}
	m := meds[0]
	if m.DrugName != "Theophylline" {
		t.Errorf("drug = %q", m.DrugName)
	}
	if m.Drug.Code != ontology.CodeTheophylline {
		t.Errorf("code = %v", m.Drug)
	}
	if !strings.Contains(m.DoseText, "20 mg") {
		t.Errorf("dose = %q", m.DoseText)
	}
}

func TestProblemsExtraction(t *testing.T) {
	doc := figure1Doc(t)
	problems := Problems(doc)
	// Asthma and Bronchitis values (the nested Albuterol value's parent
	// is a value, not an Observation).
	if len(problems) != 2 {
		t.Fatalf("problems = %d: %+v", len(problems), problems)
	}
	names := map[string]bool{}
	for _, p := range problems {
		names[p.Display] = true
	}
	if !names["Asthma"] || !names["Bronchitis"] {
		t.Errorf("problems = %v", names)
	}
}

func TestPatientOf(t *testing.T) {
	doc := figure1Doc(t)
	p, ok := PatientOf(doc)
	if !ok {
		t.Fatal("no patient")
	}
	if p.Given != "FirstName" || p.Family != "LastName" || p.Gender != "M" {
		t.Errorf("patient = %+v", p)
	}
	if p.BirthTime == "" {
		t.Error("birth time missing")
	}
	if _, ok := PatientOf(&xmltree.Document{}); ok {
		t.Error("empty document has a patient")
	}
}

func TestSummary(t *testing.T) {
	doc := figure1Doc(t)
	s := Summary(doc)
	for _, want := range []string{"FirstName", "Asthma", "Theophylline"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
	if Summary(&xmltree.Document{}) != "" {
		t.Error("empty document summary not empty")
	}
}

func TestExtractionOnGeneratedCorpus(t *testing.T) {
	ont, err := ontology.Generate(ontology.GenConfig{Seed: 4, ExtraConcepts: 50})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(GenConfig{Seed: 4, NumDocuments: 10, ProblemsPerPatient: 3, MedicationsPerPatient: 3, ProceduresPerPatient: 1}, ont)
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range g.GenerateCorpus().Docs() {
		if _, ok := PatientOf(doc); !ok {
			t.Fatalf("doc %s has no patient", doc.Name)
		}
		if len(Medications(doc)) == 0 {
			t.Fatalf("doc %s has no medications", doc.Name)
		}
		if len(Problems(doc)) == 0 {
			t.Fatalf("doc %s has no problems", doc.Name)
		}
		for _, m := range Medications(doc) {
			if m.DrugName == "" || m.Drug.IsZero() {
				t.Fatalf("doc %s: incomplete medication %+v", doc.Name, m)
			}
		}
		if Summary(doc) == "" {
			t.Fatalf("doc %s has empty summary", doc.Name)
		}
	}
}

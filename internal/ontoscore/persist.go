package ontoscore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/ontology"
	"repro/internal/store"
	"repro/internal/xmltree"
)

// Persistence for OntoScore maps. The OntoScore stage is the expensive
// middle step of index creation (Section V-B); persisting its output
// lets a rebuilt index — or a different corpus over the same ontology —
// reuse it. Each keyword's scores are stored under
// "<prefix>/<strategy>/<keyword>".

// appendScores encodes one keyword's concept scores.
func appendScores(buf []byte, s Scores) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	// Deterministic order for byte-stable persistence.
	ids := make([]ontology.ConceptID, 0, len(s))
	for id := range s {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ { // insertion sort; maps are small
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(id))
		var f [8]byte
		binary.LittleEndian.PutUint64(f[:], math.Float64bits(s[id]))
		buf = append(buf, f[:]...)
	}
	return buf
}

func decodeScores(buf []byte) (Scores, error) {
	n, sz, err := xmltree.CanonicalUvarint(buf)
	if err != nil {
		return nil, fmt.Errorf("ontoscore: scores header: %w", err)
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("ontoscore: implausible score count %d", n)
	}
	off := sz
	out := make(Scores, n)
	for i := uint64(0); i < n; i++ {
		id, used, err := xmltree.CanonicalUvarint(buf[off:])
		if err != nil {
			return nil, fmt.Errorf("ontoscore: concept id: %w", err)
		}
		off += used
		if off+8 > len(buf) {
			return nil, errors.New("ontoscore: truncated score")
		}
		out[ontology.ConceptID(id)] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	if off != len(buf) {
		return nil, errors.New("ontoscore: trailing bytes after scores")
	}
	return out, nil
}

// SaveTo persists the map's entries under the prefix.
func (m *Map) SaveTo(st *store.Store, prefix string) error {
	base := prefix + "/" + m.strategy.String() + "/"
	for _, kw := range m.Keywords() {
		if err := st.Put(base+kw, appendScores(nil, m.scores[kw])); err != nil {
			return fmt.Errorf("ontoscore: saving %q: %w", kw, err)
		}
	}
	return st.Sync()
}

// LoadMap reads a map previously saved for the strategy.
func LoadMap(st *store.Store, prefix string, strategy Strategy) (*Map, error) {
	m := &Map{strategy: strategy, scores: make(map[string]Scores)}
	base := prefix + "/" + strategy.String() + "/"
	var firstErr error
	err := st.Scan(base, func(key string, val []byte) bool {
		kw := strings.TrimPrefix(key, base)
		s, err := decodeScores(val)
		if err != nil {
			firstErr = fmt.Errorf("ontoscore: loading %q: %w", kw, err)
			return false
		}
		if len(s) > 0 {
			m.scores[kw] = s
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return m, nil
}

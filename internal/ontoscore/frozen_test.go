package ontoscore

import (
	"math"
	"testing"

	"repro/internal/ontology"
)

// The frozen-graph computer must produce bit-identical scores under
// every strategy.
func TestFrozenComputerEquivalence(t *testing.T) {
	ont, err := ontology.Generate(ontology.GenConfig{
		Seed: 19, ExtraConcepts: 250, SynonymProb: 0.4,
		MultiParentProb: 0.2, RelationshipsPerDisorder: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := NewComputer(ont, DefaultParams())
	fz := c.Frozen()
	for _, s := range []Strategy{StrategyGraph, StrategyTaxonomy, StrategyRelationships} {
		for _, kw := range []string{"asthma", "structure", "cardiac", "chronic", "aspirin"} {
			a := c.Compute(s, kw)
			b := fz.Compute(s, kw)
			if len(a) != len(b) {
				t.Fatalf("%v %q: %d vs %d concepts", s, kw, len(a), len(b))
			}
			for id, v := range a {
				if math.Abs(b[id]-v) > 1e-12 {
					t.Errorf("%v %q concept %d: %f vs %f", s, kw, id, v, b[id])
				}
			}
		}
	}
}

func BenchmarkExpansionMapBacked(b *testing.B) {
	c := benchComputer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(c.Relationships("structure")) == 0 {
			b.Fatal("no scores")
		}
	}
}

func BenchmarkExpansionFrozen(b *testing.B) {
	c := benchComputer(b).Frozen()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(c.Relationships("structure")) == 0 {
			b.Fatal("no scores")
		}
	}
}

func benchComputer(b *testing.B) *Computer {
	b.Helper()
	ont, err := ontology.Generate(ontology.GenConfig{
		Seed: 19, ExtraConcepts: 800, SynonymProb: 0.4,
		MultiParentProb: 0.2, RelationshipsPerDisorder: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	return NewComputer(ont, DefaultParams())
}

package ontoscore

import (
	"math"
	"testing"

	"repro/internal/ontology"
)

func newComputer(t *testing.T) (*Computer, *ontology.Ontology) {
	t.Helper()
	ont := ontology.Figure2Fragment()
	return NewComputer(ont, DefaultParams()), ont
}

func idOf(t *testing.T, ont *ontology.Ontology, pref string) ontology.ConceptID {
	t.Helper()
	c := ont.ByPreferred(pref)
	if c == nil {
		t.Fatalf("concept %q missing", pref)
	}
	return c.ID
}

func TestStrategyNames(t *testing.T) {
	for _, s := range Strategies() {
		name := s.String()
		got, err := ParseStrategy(name)
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("bogus strategy parsed")
	}
	if Strategy(99).String() == "" {
		t.Error("unknown strategy String empty")
	}
}

func TestSeedsContainment(t *testing.T) {
	c, ont := newComputer(t)
	seeds := c.Seeds("asthma")
	if len(seeds) != 7 {
		t.Fatalf("seeds = %d concepts, want 7", len(seeds))
	}
	max := 0.0
	for _, s := range seeds {
		if s <= 0 || s > 1 {
			t.Fatalf("seed score %f out of (0,1]", s)
		}
		if s > max {
			max = s
		}
	}
	if math.Abs(max-1) > 1e-12 {
		t.Errorf("max seed = %f, want 1", max)
	}
	// The concept literally named "Asthma" should be the strongest seed
	// (shortest matching document).
	asthma := idOf(t, ont, "Asthma")
	if seeds[asthma] < max-1e-12 {
		t.Errorf("Asthma seed = %f, max = %f", seeds[asthma], max)
	}
	if got := c.Seeds("zzznothing"); got != nil {
		t.Errorf("unknown keyword seeds = %v", got)
	}
}

func TestComputeDispatch(t *testing.T) {
	c, _ := newComputer(t)
	if got := c.Compute(StrategyNone, "asthma"); got != nil {
		t.Error("StrategyNone must not expand")
	}
	if got := c.Compute(Strategy(42), "asthma"); got != nil {
		t.Error("unknown strategy must return nil")
	}
	for _, s := range []Strategy{StrategyGraph, StrategyTaxonomy, StrategyRelationships} {
		if got := c.Compute(s, "asthma"); len(got) == 0 {
			t.Errorf("%v returned no scores", s)
		}
	}
}

// The intro example: the keyword "bronchial structure" does not occur in
// the Figure-1 document, but its concept is one finding-site-of edge
// from Asthma. Graph and Relationships must give Asthma a nonzero
// OntoScore for it; Taxonomy must not (no is-a path carries it above
// threshold at distance > taxonomy reach).
func TestBronchialStructureReachesAsthma(t *testing.T) {
	c, ont := newComputer(t)
	asthma := idOf(t, ont, "Asthma")
	bronchial := idOf(t, ont, "Bronchial structure")

	graph := c.Graph("bronchial structure")
	if graph[bronchial] < 0.99 {
		t.Errorf("seed score lost: %f", graph[bronchial])
	}
	// One undirected edge away: decay^1 * 1.0 = 0.5.
	if math.Abs(graph[asthma]-0.5) > 1e-9 {
		t.Errorf("Graph OS(asthma | bronchial structure) = %f, want 0.5", graph[asthma])
	}

	rel := c.Relationships("bronchial structure")
	// Two paths reach Asthma: the direct finding-site-of edge from the
	// filler back to the subject (beta / inDegree = 0.5/3), and the
	// stronger Bronchial structure -> Bronchus (is-a down, sole child)
	// -> Disorder of bronchus (finding-site-of back, beta/1) -> Asthma
	// (is-a down, one of two children) = 1 * 0.5 * 0.5 = 0.25. Max wins.
	want := 0.25
	if 0.5/3 < c.Params().Threshold {
		t.Fatalf("test setup broken: direct path below threshold")
	}
	if math.Abs(rel[asthma]-want) > 1e-9 {
		t.Errorf("Relationships OS(asthma) = %f, want %f", rel[asthma], want)
	}

	tax := c.Taxonomy("bronchial structure")
	if _, ok := tax[asthma]; ok {
		t.Errorf("Taxonomy must not reach Asthma from a body structure: %f", tax[asthma])
	}
}

func TestTaxonomyUpwardUnpenalized(t *testing.T) {
	c, ont := newComputer(t)
	tax := c.Taxonomy("asthma")
	asthma := idOf(t, ont, "Asthma")
	disBronchus := idOf(t, ont, "Disorder of bronchus")
	disThorax := idOf(t, ont, "Disorder of thorax")
	// Ancestors receive the full seed score (paper Section VII-A:
	// parent edges are not penalized).
	if math.Abs(tax[disBronchus]-tax[asthma]) > 1e-9 {
		t.Errorf("direct superclass got %f, seed %f", tax[disBronchus], tax[asthma])
	}
	if math.Abs(tax[disThorax]-tax[asthma]) > 1e-9 {
		t.Errorf("far ancestor got %f, seed %f", tax[disThorax], tax[asthma])
	}
}

func TestTaxonomyDownwardSplit(t *testing.T) {
	// Seed at Disorder of bronchus; Asthma is one of its 2 direct
	// subclasses (Asthma, Bronchitis), so it gets seed/2 — the worked
	// example's IRS * (1/n) rule.
	c, ont := newComputer(t)
	tax := c.Taxonomy("disorder of bronchus")
	dob := idOf(t, ont, "Disorder of bronchus")
	asthma := idOf(t, ont, "Asthma")
	if len(ont.Subclasses(dob)) != 2 {
		t.Fatalf("fragment changed: DOB has %d subclasses", len(ont.Subclasses(dob)))
	}
	want := tax[dob] / 2
	if math.Abs(tax[asthma]-want) > 1e-9 {
		t.Errorf("OS(asthma) = %f, want seed/2 = %f", tax[asthma], want)
	}
	// Asthma's own subclasses: a further split by 6, 1/12 of the seed —
	// below threshold 0.1, so pruned.
	attack := idOf(t, ont, "Asthma attack")
	if v, ok := tax[attack]; ok {
		t.Errorf("Asthma attack should be pruned, got %f", v)
	}
}

func TestThresholdPruning(t *testing.T) {
	_, ont := newComputer(t)
	loose := NewComputer(ont, Params{Decay: 0.5, Beta: 0.5, Threshold: 0.0001, BM25: DefaultParams().BM25})
	strict := NewComputer(ont, Params{Decay: 0.5, Beta: 0.5, Threshold: 0.3, BM25: DefaultParams().BM25})
	l := loose.Graph("asthma")
	s := strict.Graph("asthma")
	if len(s) >= len(l) {
		t.Errorf("strict threshold kept %d >= loose %d", len(s), len(l))
	}
	for id, v := range s {
		if v < 0.3 {
			t.Errorf("score %f below threshold recorded for %d", v, id)
		}
		if math.Abs(l[id]-v) > 1e-9 {
			t.Errorf("threshold changed retained score: %f vs %f", l[id], v)
		}
	}
}

func TestGraphDecayDistance(t *testing.T) {
	c, ont := newComputer(t)
	g := c.Graph("theophylline")
	theo := idOf(t, ont, "Theophylline")
	asthma := idOf(t, ont, "Asthma")
	broncho := idOf(t, ont, "Bronchodilator agent")
	if math.Abs(g[theo]-1) > 1e-9 {
		t.Errorf("seed = %f", g[theo])
	}
	// Asthma is 1 edge away (treated-by), Bronchodilator agent 1 edge
	// (is-a).
	if math.Abs(g[asthma]-0.5) > 1e-9 || math.Abs(g[broncho]-0.5) > 1e-9 {
		t.Errorf("distance-1 scores: asthma=%f broncho=%f", g[asthma], g[broncho])
	}
	// Everything reached scores decay^dist exactly for a single seed.
	for id, v := range g {
		d := ont.GraphDistance(theo, id)
		if d < 0 {
			t.Fatalf("unreachable concept scored: %d", id)
		}
		want := math.Pow(0.5, float64(d))
		if math.Abs(v-want) > 1e-9 {
			t.Errorf("concept %d at distance %d scored %f, want %f", id, d, v, want)
		}
	}
}

// Observation 1: the merged expansion equals the naive per-seed
// expansion merged with max.
func TestMergedBFSEquivalence(t *testing.T) {
	ont, err := ontology.Generate(ontology.GenConfig{
		Seed: 17, ExtraConcepts: 300, SynonymProb: 0.4,
		MultiParentProb: 0.2, RelationshipsPerDisorder: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := NewComputer(ont, DefaultParams())
	for _, kw := range []string{"asthma", "structure", "cardiac", "stenosis", "chronic"} {
		merged := c.Graph(kw)
		naive := c.GraphNaive(kw)
		if len(merged) != len(naive) {
			t.Fatalf("kw %q: merged %d concepts, naive %d", kw, len(merged), len(naive))
		}
		for id, v := range merged {
			if math.Abs(naive[id]-v) > 1e-9 {
				t.Errorf("kw %q concept %d: merged %f naive %f", kw, id, v, naive[id])
			}
		}
	}
}

// The Relationships strategy's implicit arithmetic must match an
// explicit expansion over the materialized EL view.
func TestRelationshipsMatchesELView(t *testing.T) {
	ont, err := ontology.Generate(ontology.GenConfig{
		Seed: 23, ExtraConcepts: 200, SynonymProb: 0.4,
		MultiParentProb: 0.15, RelationshipsPerDisorder: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	c := NewComputer(ont, params)
	view := ontology.NewELView(ont)

	// Explicit expansion over concepts plus restriction nodes.
	// Node encoding: concepts as-is, restrictions offset beyond the
	// largest concept ID.
	base := ontology.ConceptID(1 << 30)
	encodeR := func(r ontology.RestrictionID) ontology.ConceptID {
		return base + ontology.ConceptID(r)
	}
	isRestriction := func(id ontology.ConceptID) bool { return id >= base }

	next := func(id ontology.ConceptID) []transition {
		if isRestriction(id) {
			rid := ontology.RestrictionID(id - base)
			r, _ := view.Restriction(rid)
			var out []transition
			// Restriction <-> filler link is free.
			out = append(out, transition{to: r.Filler, factor: 1})
			// Dotted links down to the subjects carry beta, split by the
			// restriction's in-degree.
			n := view.InDegree(rid)
			for _, subj := range view.Subjects(rid) {
				out = append(out, transition{to: subj, factor: params.Beta / float64(n)})
			}
			return out
		}
		out := c.taxonomyTransitions(id)
		for _, rid := range view.RestrictionsOf(id) {
			// Subject up into its restriction: the dotted link, beta.
			out = append(out, transition{to: encodeR(rid), factor: params.Beta})
		}
		for _, rid := range view.RestrictionsWithFiller(id) {
			// Filler into the restriction: free.
			out = append(out, transition{to: encodeR(rid), factor: 1})
		}
		return out
	}

	for _, kw := range []string{"asthma", "aspirin", "cardiac", "structure"} {
		seeds := c.Seeds(kw)
		explicit := expand(seeds, params.Threshold, next)
		implicit := c.Relationships(kw)
		// Compare on real concepts only.
		for id, v := range implicit {
			ev, ok := explicit[id]
			if !ok {
				t.Errorf("kw %q: implicit reached %d (%.4f), explicit did not", kw, id, v)
				continue
			}
			if math.Abs(ev-v) > 1e-9 {
				t.Errorf("kw %q concept %d: implicit %f explicit %f", kw, id, v, ev)
			}
		}
		for id, v := range explicit {
			if isRestriction(id) || v < params.Threshold {
				continue
			}
			if _, ok := implicit[id]; !ok {
				t.Errorf("kw %q: explicit reached %d (%.4f), implicit did not", kw, id, v)
			}
		}
	}
}

func TestRelationshipsExtendTaxonomy(t *testing.T) {
	// Every concept the Taxonomy strategy reaches is also reached by
	// Relationships with at least the same score.
	c, _ := newComputer(t)
	for _, kw := range []string{"asthma", "bronchitis", "medications"} {
		tax := c.Taxonomy(kw)
		rel := c.Relationships(kw)
		for id, tv := range tax {
			rv, ok := rel[id]
			if !ok {
				t.Errorf("kw %q: concept %d in Taxonomy but not Relationships", kw, id)
				continue
			}
			if rv < tv-1e-9 {
				t.Errorf("kw %q concept %d: Relationships %f < Taxonomy %f", kw, id, rv, tv)
			}
		}
	}
}

func TestScoresWithinUnitInterval(t *testing.T) {
	ont, err := ontology.Generate(ontology.GenConfig{
		Seed: 5, ExtraConcepts: 250, SynonymProb: 0.4,
		MultiParentProb: 0.2, RelationshipsPerDisorder: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := NewComputer(ont, DefaultParams())
	for _, s := range []Strategy{StrategyGraph, StrategyTaxonomy, StrategyRelationships} {
		for _, kw := range []string{"chronic", "structure", "arrest"} {
			for id, v := range c.Compute(s, kw) {
				if v <= 0 || v > 1+1e-9 {
					t.Errorf("%v %q concept %d: score %f outside (0,1]", s, kw, id, v)
				}
				if v < c.Params().Threshold {
					t.Errorf("%v %q concept %d: score %f below threshold", s, kw, id, v)
				}
			}
		}
	}
}

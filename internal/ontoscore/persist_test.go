package ontoscore

import (
	"math"
	"testing"

	"repro/internal/ontology"
	"repro/internal/store"
)

func TestMapSaveLoadRoundTrip(t *testing.T) {
	ont, err := ontology.Generate(ontology.GenConfig{
		Seed: 8, ExtraConcepts: 120, SynonymProb: 0.3,
		MultiParentProb: 0.1, RelationshipsPerDisorder: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := NewComputer(ont, DefaultParams())
	vocab := []string{"asthma", "cardiac", "structure", "aspirin", "zzznothing"}
	m := BuildMap(c, StrategyRelationships, vocab)
	if m.Entries() == 0 {
		t.Fatal("empty map")
	}

	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := m.SaveTo(st, "onto"); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMap(st, "onto", StrategyRelationships)
	if err != nil {
		t.Fatal(err)
	}
	if got.Strategy() != StrategyRelationships {
		t.Error("strategy lost")
	}
	if got.Entries() != m.Entries() {
		t.Fatalf("entries: %d vs %d", got.Entries(), m.Entries())
	}
	for _, kw := range m.Keywords() {
		want := m.ScoresFor(kw)
		have := got.ScoresFor(kw)
		if len(want) != len(have) {
			t.Fatalf("kw %q sizes differ", kw)
		}
		for id, v := range want {
			if math.Abs(have[id]-v) > 0 {
				t.Errorf("kw %q concept %d: %v vs %v", kw, id, have[id], v)
			}
		}
	}
	// Loading a strategy with no saved entries yields an empty map.
	empty, err := LoadMap(st, "onto", StrategyGraph)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Entries() != 0 {
		t.Errorf("cross-strategy leak: %d entries", empty.Entries())
	}
}

func TestLoadMapCorrupt(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Put("onto/Graph/asthma", []byte{0xFF, 0x01}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMap(st, "onto", StrategyGraph); err == nil {
		t.Error("corrupt scores loaded")
	}
}

func TestDecodeScoresErrors(t *testing.T) {
	good := appendScores(nil, Scores{1: 0.5, 9: 0.25})
	if _, err := decodeScores(good); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(good); i++ {
		if _, err := decodeScores(good[:i]); err == nil {
			t.Errorf("truncation at %d accepted", i)
		}
	}
	if _, err := decodeScores(append(good, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

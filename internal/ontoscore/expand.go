package ontoscore

import (
	"container/heap"

	"repro/internal/ontology"
)

// The expansion engine. All three strategies instantiate the same
// merged best-first search: every concept containing the keyword is
// seeded with its IRS score, and authority flows outward along
// strategy-specific transitions, each multiplying the score by a factor
// in (0, 1]. Multiple arrivals at a concept merge with max (the paper's
// Observation 1: parallel BFS instances are merged, propagating the
// aggregate). Because every transition factor is <= 1, a max-priority
// queue finalizes each concept at its true maximum over all paths —
// the fixpoint of equation (6) under max aggregation — while visiting
// each concept once, exactly the efficiency Observation 1 is after.

// transition is one outgoing flow step: the target concept and the
// multiplicative factor applied to the score.
type transition struct {
	to     ontology.ConceptID
	factor float64
}

// expandFn enumerates the transitions leaving a concept under a
// strategy.
type expandFn func(ontology.ConceptID) []transition

type scoreItem struct {
	id    ontology.ConceptID
	score float64
}

type scoreHeap []scoreItem

func (h scoreHeap) Len() int      { return len(h) }
func (h scoreHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h scoreHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score > h[j].score // max-heap on score
	}
	return h[i].id < h[j].id // deterministic tie-break
}
func (h *scoreHeap) Push(x any) { *h = append(*h, x.(scoreItem)) }
func (h *scoreHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// expand runs the merged best-first expansion from the seeds, pruning
// below threshold, and returns the final score of every reached concept
// (seeds included).
func expand(seeds Scores, threshold float64, next expandFn) Scores {
	out := make(Scores, len(seeds))
	h := make(scoreHeap, 0, len(seeds))
	for id, s := range seeds {
		if s >= threshold {
			h = append(h, scoreItem{id: id, score: s})
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		it := heap.Pop(&h).(scoreItem)
		if _, done := out[it.id]; done {
			continue // already finalized at a >= score
		}
		out[it.id] = it.score
		for _, tr := range next(it.id) {
			if tr.factor <= 0 {
				continue
			}
			s := it.score * tr.factor
			if s < threshold {
				continue
			}
			if _, done := out[tr.to]; done {
				continue
			}
			heap.Push(&h, scoreItem{id: tr.to, score: s})
		}
	}
	return out
}

// expandNaive runs one best-first expansion per seed independently and
// merges the results with max. It computes the same scores as expand
// but revisits shared regions of the graph once per seed — the
// inefficiency Observation 1 eliminates. Exposed for the ablation
// benchmark and as a test oracle.
func expandNaive(seeds Scores, threshold float64, next expandFn) Scores {
	out := make(Scores)
	for id, s := range seeds {
		single := expand(Scores{id: s}, threshold, next)
		for c, v := range single {
			if v > out[c] {
				out[c] = v
			}
		}
	}
	return out
}

package ontoscore

import (
	"repro/internal/ontology"
)

// Graph computes OntoScores under the undirected, unlabeled view
// (Section IV-A): every edge, regardless of type or direction, carries
// flow attenuated by Decay.
func (c *Computer) Graph(keyword string) Scores {
	seeds := c.Seeds(keyword)
	if len(seeds) == 0 {
		return nil
	}
	d := c.params.Decay
	return expand(seeds, c.params.Threshold, func(id ontology.ConceptID) []transition {
		nbs := c.graph.Neighbors(id)
		out := make([]transition, 0, len(nbs))
		for _, nb := range nbs {
			out = append(out, transition{to: nb, factor: d})
		}
		return out
	})
}

// GraphNaive is Graph computed with one independent expansion per seed
// (no Observation-1 merging). Identical results, used as the ablation
// baseline.
func (c *Computer) GraphNaive(keyword string) Scores {
	seeds := c.Seeds(keyword)
	if len(seeds) == 0 {
		return nil
	}
	d := c.params.Decay
	return expandNaive(seeds, c.params.Threshold, func(id ontology.ConceptID) []transition {
		nbs := c.graph.Neighbors(id)
		out := make([]transition, 0, len(nbs))
		for _, nb := range nbs {
			out = append(out, transition{to: nb, factor: d})
		}
		return out
	})
}

// taxonomyTransitions enumerates the is-a flow steps shared by the
// Taxonomy and Relationships strategies:
//
//   - toward a direct superclass: factor 1 (unpenalized — the paper's
//     Section VII-A: "Taxonomy does not penalize the ontology expansion
//     when following is-a (parent) edges");
//   - toward a direct subclass: factor 1/NumSubclasses(current), the
//     ObjectRank-style split of authority among the children
//     (Section IV-B's partial-satisfaction heuristic; the worked example
//     divides by the parent's 26 direct subclasses).
func (c *Computer) taxonomyTransitions(id ontology.ConceptID) []transition {
	sup := c.graph.Superclasses(id)
	sub := c.graph.Subclasses(id)
	out := make([]transition, 0, len(sup)+len(sub))
	for _, p := range sup {
		out = append(out, transition{to: p, factor: 1})
	}
	if n := len(sub); n > 0 {
		f := 1 / float64(n)
		for _, s := range sub {
			out = append(out, transition{to: s, factor: f})
		}
	}
	return out
}

// Taxonomy computes OntoScores using only the taxonomic portion of the
// ontology (Section IV-B).
func (c *Computer) Taxonomy(keyword string) Scores {
	seeds := c.Seeds(keyword)
	if len(seeds) == 0 {
		return nil
	}
	return expand(seeds, c.params.Threshold, c.taxonomyTransitions)
}

// Relationships computes OntoScores under the description-logic view
// (Sections IV-C and VI-C). Is-a edges behave exactly as in Taxonomy.
// An attribute relationship r(subject, filler) is logically the
// subclass axiom "subject SUBCLASS-OF Exists r.filler"; the dotted link
// between the subject and the restriction node carries the decay beta
// of equation (9), splitting by the restriction's in-degree when flowing
// downward into the subjects, while the link between the restriction
// and its filler is free. Without materializing restriction nodes, the
// equivalent per-edge arithmetic is:
//
//   - subject -> filler: factor Beta (one dotted link upward);
//   - filler -> subject: factor Beta / inDegree, where inDegree is the
//     number of subjects sharing the restriction (the paper: "the
//     denominator is the in-degree of the existential role
//     restriction").
//
// TestRelationshipsMatchesELView verifies this arithmetic against an
// explicit expansion over the materialized EL view.
func (c *Computer) Relationships(keyword string) Scores {
	seeds := c.Seeds(keyword)
	if len(seeds) == 0 {
		return nil
	}
	b := c.params.Beta
	return expand(seeds, c.params.Threshold, func(id ontology.ConceptID) []transition {
		out := c.taxonomyTransitions(id)
		for _, e := range c.graph.Out(id) {
			if e.Type == ontology.IsA {
				continue
			}
			// id --r--> e.To: id is the subject, e.To the filler.
			out = append(out, transition{to: e.To, factor: b})
		}
		for _, e := range c.graph.In(id) {
			if e.Type == ontology.IsA {
				continue
			}
			// e.To --r--> id: id is the filler; flow splits among the
			// subjects of Exists r.id.
			n := c.graph.InDegree(id, e.Type)
			if n == 0 {
				continue
			}
			out = append(out, transition{to: e.To, factor: b / float64(n)})
		}
		return out
	})
}

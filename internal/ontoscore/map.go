package ontoscore

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/ontology"
)

// Map is the OntoScore hash map of Algorithm 1: for a fixed strategy it
// stores OS(O, w, c) for every (keyword w, concept c) pair whose score
// meets the threshold. It is the intermediate product of the index
// creation module, consumed when the XOnto-DILs are assembled.
type Map struct {
	strategy Strategy
	scores   map[string]Scores
}

// BuildMap evaluates the strategy over every keyword of the vocabulary.
// Keywords are evaluated concurrently (the computer is read-only after
// construction); the result is deterministic.
func BuildMap(c *Computer, s Strategy, vocabulary []string) *Map {
	m := &Map{strategy: s, scores: make(map[string]Scores, len(vocabulary))}
	if s == StrategyNone {
		return m
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(vocabulary) {
		workers = len(vocabulary)
	}
	if workers < 1 {
		workers = 1
	}
	type result struct {
		kw     string
		scores Scores
	}
	in := make(chan string)
	out := make(chan result)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for kw := range in {
				out <- result{kw: kw, scores: c.Compute(s, kw)}
			}
		}()
	}
	go func() {
		for _, kw := range vocabulary {
			in <- kw
		}
		close(in)
		wg.Wait()
		close(out)
	}()
	for r := range out {
		if len(r.scores) > 0 {
			m.scores[r.kw] = r.scores
		}
	}
	return m
}

// Strategy returns the strategy the map was built with.
func (m *Map) Strategy() Strategy { return m.strategy }

// Get returns OS(O, keyword, concept) and whether it is recorded.
func (m *Map) Get(keyword string, id ontology.ConceptID) (float64, bool) {
	s, ok := m.scores[keyword]
	if !ok {
		return 0, false
	}
	v, ok := s[id]
	return v, ok
}

// ScoresFor returns every recorded concept score for the keyword. The
// map is shared; callers must not modify it.
func (m *Map) ScoresFor(keyword string) Scores { return m.scores[keyword] }

// Keywords returns the keywords with at least one recorded score,
// sorted.
func (m *Map) Keywords() []string {
	out := make([]string, 0, len(m.scores))
	for kw := range m.scores {
		out = append(out, kw)
	}
	sort.Strings(out)
	return out
}

// Entries counts the recorded (keyword, concept) pairs.
func (m *Map) Entries() int {
	n := 0
	for _, s := range m.scores {
		n += len(s)
	}
	return n
}

// Package ontoscore computes the semantic relevance of ontology
// concepts to query keywords — the OntoScore of the paper's Sections IV
// and VI. Three strategies are provided:
//
//   - Graph: the ontology as an undirected, unlabeled graph; authority
//     decays by a constant factor per edge (Section IV-A).
//   - Taxonomy: only is-a links; flowing to a superclass is free (the
//     paper: "Taxonomy does not penalize the ontology expansion when
//     following is-a (parent) edges"), flowing to a direct subclass
//     splits the score by the parent's subclass count, as in
//     ObjectRank's authority-flow distribution (Section IV-B).
//   - Relationships: the description-logic view; attribute
//     relationships are traversed through virtual existential role
//     restrictions, each dotted link decaying the score by beta, with
//     the restriction's in-degree splitting flow toward subjects
//     (Sections IV-C and VI-C). Is-a edges behave as in Taxonomy.
//
// All strategies share one engine: a merged best-first expansion from
// every concept containing the keyword (the paper's Algorithm 1 with
// the Observation-1 optimization), pruned below a score threshold.
// Seeds are scored by normalized BM25 over concepts-viewed-as-documents.
package ontoscore

import (
	"context"
	"fmt"

	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/xmltree"
)

// Strategy selects an OntoScore computation method. StrategyNone is the
// XRANK baseline: no ontological expansion at all.
type Strategy int

const (
	StrategyNone Strategy = iota
	StrategyGraph
	StrategyTaxonomy
	StrategyRelationships
)

var strategyNames = map[Strategy]string{
	StrategyNone:          "XRANK",
	StrategyGraph:         "Graph",
	StrategyTaxonomy:      "Taxonomy",
	StrategyRelationships: "Relationships",
}

func (s Strategy) String() string {
	if n, ok := strategyNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy resolves a strategy by its display name.
func ParseStrategy(name string) (Strategy, error) {
	for s, n := range strategyNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("ontoscore: unknown strategy %q", name)
}

// Strategies lists every strategy in presentation order (the four
// columns of the paper's tables).
func Strategies() []Strategy {
	return []Strategy{StrategyNone, StrategyGraph, StrategyTaxonomy, StrategyRelationships}
}

// Params are the knobs of the OntoScore computation; the paper's
// experiments set Decay = 0.5, Threshold = 0.1 and beta = 0.5.
type Params struct {
	// Decay is the per-edge attenuation of the Graph strategy.
	Decay float64
	// Beta is the attenuation applied per dotted link when traversing
	// an existential role restriction (Relationships strategy).
	Beta float64
	// Threshold prunes expansion: concepts scoring below it are neither
	// recorded nor expanded from.
	Threshold float64
	// BM25 parameterizes the IRS function over ontology concepts.
	BM25 ir.BM25Params
}

// DefaultParams returns the paper's experimental settings.
func DefaultParams() Params {
	return Params{Decay: 0.5, Beta: 0.5, Threshold: 0.1, BM25: ir.DefaultBM25()}
}

// Scores maps concepts to their OntoScore for one keyword.
type Scores map[ontology.ConceptID]float64

// Graph abstracts the traversal operations the strategies need, so the
// expansion can run against either the mutable map-backed
// ontology.Ontology or the frozen CSR snapshot ontology.Frozen (the
// paper's future-work "in-memory representations of the ontology
// graphs"; see BenchmarkFrozenOntology).
type Graph interface {
	Neighbors(ontology.ConceptID) []ontology.ConceptID
	Superclasses(ontology.ConceptID) []ontology.ConceptID
	Subclasses(ontology.ConceptID) []ontology.ConceptID
	NumSubclasses(ontology.ConceptID) int
	Out(ontology.ConceptID) []ontology.Edge
	In(ontology.ConceptID) []ontology.Edge
	InDegree(ontology.ConceptID, ontology.RelType) int
}

var (
	_ Graph = (*ontology.Ontology)(nil)
	_ Graph = (*ontology.Frozen)(nil)
)

// Computer evaluates OntoScores against one ontology. It precomputes
// the concept-level IR index once; keyword evaluations are independent
// and safe to run concurrently after construction.
type Computer struct {
	ont    *ontology.Ontology
	graph  Graph
	params Params
	index  *ir.Index
}

// NewComputer indexes the ontology's term texts and returns a ready
// computer traversing the ontology directly.
func NewComputer(ont *ontology.Ontology, params Params) *Computer {
	c := &Computer{ont: ont, graph: ont, params: params, index: ir.NewIndex()}
	for _, id := range ont.Concepts() {
		c.index.Add(ir.DocKey(id), tokenize(ont.TermText(id)))
	}
	return c
}

// Frozen returns a computer identical to c but traversing the frozen
// CSR snapshot of the ontology instead of the map-backed graph — same
// scores, faster expansion (no per-call adjacency allocation).
func (c *Computer) Frozen() *Computer {
	out := *c
	out.graph = ontology.Freeze(c.ont)
	return &out
}

// Ontology returns the ontology the computer evaluates against.
func (c *Computer) Ontology() *ontology.Ontology { return c.ont }

// Params returns the computation parameters.
func (c *Computer) Params() Params { return c.params }

// Seeds computes IRS_O(x, w) for every concept x containing the keyword
// (as a contiguous token phrase in one of its terms), normalized to
// (0, 1] over the containing set. These are the authority sources of
// Algorithm 1.
func (c *Computer) Seeds(keyword string) Scores {
	containing := c.ont.ConceptsContaining(keyword)
	if len(containing) == 0 {
		return nil
	}
	terms := tokenize(keyword)
	raw := make(Scores, len(containing))
	max := 0.0
	for _, id := range containing {
		s := c.index.BM25(c.params.BM25, ir.DocKey(id), terms)
		raw[id] = s
		if s > max {
			max = s
		}
	}
	if max == 0 {
		// Degenerate (e.g. single-concept collection); treat containment
		// as full relevance.
		for id := range raw {
			raw[id] = 1
		}
		return raw
	}
	for id, s := range raw {
		raw[id] = s / max
	}
	return raw
}

// Compute evaluates the strategy for one keyword, returning every
// concept whose OntoScore meets the threshold. StrategyNone returns nil:
// the baseline uses no ontological association.
func (c *Computer) Compute(s Strategy, keyword string) Scores {
	switch s {
	case StrategyNone:
		return nil
	case StrategyGraph:
		return c.Graph(keyword)
	case StrategyTaxonomy:
		return c.Taxonomy(keyword)
	case StrategyRelationships:
		return c.Relationships(keyword)
	default:
		return nil
	}
}

// ComputeCtx is Compute under a context: when the context carries an
// active obs trace, the propagation is recorded as an
// "ontoscore.propagate" span with the system, strategy, keyword, and
// result size — the paper's per-stage cost attribution (Table III's
// OntoScore column) measured per query instead of per build.
func (c *Computer) ComputeCtx(ctx context.Context, s Strategy, keyword string) Scores {
	_, sp := obs.StartSpan(ctx, "ontoscore.propagate")
	sp.SetAttr("system", c.ont.SystemID)
	sp.SetAttr("strategy", s.String())
	sp.SetAttr("keyword", keyword)
	scores := c.Compute(s, keyword)
	sp.SetAttr("concepts", len(scores))
	sp.End()
	return scores
}

func tokenize(s string) []string { return xmltree.Tokenize(s) }

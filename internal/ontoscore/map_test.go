package ontoscore

import (
	"math"
	"testing"

	"repro/internal/ontology"
)

func TestBuildMapMatchesDirectCompute(t *testing.T) {
	ont := ontology.Figure2Fragment()
	c := NewComputer(ont, DefaultParams())
	vocab := []string{"asthma", "bronchitis", "theophylline", "unknownword"}
	m := BuildMap(c, StrategyGraph, vocab)
	if m.Strategy() != StrategyGraph {
		t.Error("strategy not recorded")
	}
	for _, kw := range vocab {
		direct := c.Graph(kw)
		stored := m.ScoresFor(kw)
		if len(direct) != len(stored) {
			t.Fatalf("kw %q: %d direct vs %d stored", kw, len(direct), len(stored))
		}
		for id, v := range direct {
			got, ok := m.Get(kw, id)
			if !ok || math.Abs(got-v) > 1e-12 {
				t.Errorf("kw %q concept %d: %f/%v vs %f", kw, id, got, ok, v)
			}
		}
	}
	// Keyword without matches is absent.
	if _, ok := m.Get("unknownword", 1); ok {
		t.Error("unknown keyword recorded")
	}
	kws := m.Keywords()
	for i := 1; i < len(kws); i++ {
		if kws[i-1] >= kws[i] {
			t.Fatal("keywords not sorted")
		}
	}
	if m.Entries() == 0 {
		t.Error("no entries")
	}
}

func TestBuildMapNoneStrategyEmpty(t *testing.T) {
	ont := ontology.Figure2Fragment()
	c := NewComputer(ont, DefaultParams())
	m := BuildMap(c, StrategyNone, []string{"asthma"})
	if m.Entries() != 0 {
		t.Errorf("XRANK map has %d entries", m.Entries())
	}
	if len(m.Keywords()) != 0 {
		t.Error("XRANK map has keywords")
	}
}

func TestBuildMapConcurrencyDeterministic(t *testing.T) {
	ont, err := ontology.Generate(ontology.GenConfig{
		Seed: 31, ExtraConcepts: 150, SynonymProb: 0.4,
		MultiParentProb: 0.15, RelationshipsPerDisorder: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := NewComputer(ont, DefaultParams())
	vocab := ont.Vocabulary()
	if len(vocab) > 120 {
		vocab = vocab[:120]
	}
	a := BuildMap(c, StrategyRelationships, vocab)
	b := BuildMap(c, StrategyRelationships, vocab)
	if a.Entries() != b.Entries() {
		t.Fatalf("entries differ: %d vs %d", a.Entries(), b.Entries())
	}
	for _, kw := range a.Keywords() {
		sa, sb := a.ScoresFor(kw), b.ScoresFor(kw)
		if len(sa) != len(sb) {
			t.Fatalf("kw %q sizes differ", kw)
		}
		for id, v := range sa {
			if math.Abs(sb[id]-v) > 1e-12 {
				t.Errorf("kw %q concept %d differs", kw, id)
			}
		}
	}
}

func TestBuildMapEmptyVocabulary(t *testing.T) {
	ont := ontology.Figure2Fragment()
	c := NewComputer(ont, DefaultParams())
	m := BuildMap(c, StrategyGraph, nil)
	if m.Entries() != 0 {
		t.Error("empty vocabulary produced entries")
	}
}

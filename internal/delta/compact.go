package delta

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/faultinject"
)

// Compaction state machine (driven by the serving layer under its
// admin mutation gate):
//
//  1. Materialize: every live delta document is written into the
//     source directory as <name>.xml (temp file + fsync + rename),
//     every tombstoned base document's file is unlinked, and the
//     directory is fsynced. Idempotent — a crash or injected failure
//     anywhere leaves a prefix of identical-content renames, the WAL
//     intact, and the old generation serving; the next attempt redoes
//     the remainder.
//  2. WAL truncate: the log's effects are now durable in the source
//     directory, so the log empties. A crash between 1 and 2 replays
//     ops whose documents are already materialized — the replay is
//     idempotent (a put becomes a same-content replace, a delete of an
//     absent name is skipped).
//  3. Reload: the normal generation rebuild (ingest.Run over the
//     source directory) picks the materialized documents up; the
//     segment is rebased over the new corpus with the (now empty) WAL.
//     A reload failure keeps the old generation serving with the old
//     segment state — still correct, retried on the next cycle.

// Materialize performs step 1 against the source directory.
func (s *Segment) Materialize(dir string) error {
	st := s.state.Load()
	entries := make([]*docEntry, 0, len(st.live))
	for _, e := range st.live {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	for _, e := range entries {
		if err := materializeOne(dir, e.name, e.body); err != nil {
			return err
		}
	}
	names := make([]string, 0, len(st.deadBase))
	for _, name := range st.deadBase {
		// A replaced base document's name is tombstoned AND live in the
		// delta; the rename above already overwrote its file with the
		// replacement. Only names with no live successor are unlinked.
		if _, alive := st.live[name]; alive {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := faultinject.Hit(FPCompact); err != nil {
			return fmt.Errorf("delta: compact: unlinking %s: %w", name, err)
		}
		path := filepath.Join(dir, name+".xml")
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("delta: compact: %w", err)
		}
	}
	if err := faultinject.Hit(FPCompact); err != nil {
		return fmt.Errorf("delta: compact: syncing %s: %w", dir, err)
	}
	syncDir(dir)
	return nil
}

func materializeOne(dir, name string, body []byte) error {
	if err := faultinject.Hit(FPCompact); err != nil {
		return fmt.Errorf("delta: compact: writing %s: %w", name, err)
	}
	tmp, err := os.CreateTemp(dir, ".delta-*.tmp")
	if err != nil {
		return fmt.Errorf("delta: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		return fmt.Errorf("delta: compact: writing %s: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("delta: compact: syncing %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("delta: compact: %w", err)
	}
	if err := faultinject.Hit(FPCompact); err != nil {
		return fmt.Errorf("delta: compact: renaming %s: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name+".xml")); err != nil {
		return fmt.Errorf("delta: compact: %w", err)
	}
	return nil
}

// TruncateWAL performs step 2 under the compaction failpoint.
func TruncateWAL(w *WAL) error {
	if err := faultinject.Hit(FPCompact); err != nil {
		return fmt.Errorf("delta: compact: truncating wal: %w", err)
	}
	return w.Truncate()
}

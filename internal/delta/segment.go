package delta

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dil"
	"repro/internal/ir"
	"repro/internal/ontology"
	"repro/internal/ontoscore"
	"repro/internal/xmltree"
)

// Config fixes a segment's indexing parameters; they must match the
// base generation's so base and delta postings score identically.
type Config struct {
	// Coll is the ontological-systems collection.
	Coll *ontology.Collection
	// Strategies lists the OntoScore strategies served (one delta
	// builder each).
	Strategies []ontoscore.Strategy
	// DIL holds alpha, OntoScore and text-extraction parameters.
	DIL dil.Params
	// Limits guard replayed/applied document parses (zero value:
	// xmltree.DefaultLimits).
	Limits xmltree.Limits
	// Owner maps a document name to its owning shard; nil means
	// unsharded (every document owned by shard 0).
	Owner func(name string) int
}

// docEntry is one live (or superseded) delta document.
type docEntry struct {
	id    int32
	name  string
	doc   *xmltree.Document
	body  []byte
	stats ir.Stats // this document's contribution to collection stats
	owner int
}

// adjustment is the cumulative delta over the base statistics
// snapshot: contributions of delta documents added, contributions of
// tombstoned documents subtracted.
type adjustment struct {
	n        int
	totalLen int64
	df       map[string]int
}

func (a adjustment) clone() adjustment {
	df := make(map[string]int, len(a.df))
	for t, c := range a.df {
		df[t] = c
	}
	return adjustment{n: a.n, totalLen: a.totalLen, df: df}
}

func (a *adjustment) add(s ir.Stats, sign int) {
	a.n += sign * s.N
	a.totalLen += int64(sign) * s.TotalLen
	for t, c := range s.DF {
		next := a.df[t] + sign*c
		if next == 0 {
			delete(a.df, t)
		} else {
			a.df[t] = next
		}
	}
}

// segState is one immutable snapshot of the delta segment. Every apply
// builds a fresh state and publishes it with an atomic pointer swap,
// so the query path reads without locks and each query sees one
// consistent state end to end. The delta builders are rebuilt per
// apply — the delta is small by construction (the compactor folds it
// into the base before it grows), so the rebuild is O(delta), never
// O(corpus).
type segState struct {
	version uint64
	seq     uint64 // last applied WAL sequence

	base      *xmltree.Corpus
	baseStats ir.Stats

	builders map[ontoscore.Strategy]*dil.Builder
	live     map[string]*docEntry // live delta documents by name
	byID     map[int32]*docEntry  // all delta documents ever (hydration)
	dead     map[int32]bool       // suppressed doc IDs: base tombstones + superseded delta
	deadBase map[int32]string     // tombstoned base documents: id -> name
	adj      adjustment
	nextID   int32
}

func (s *segState) isDead(docID int32) bool { return s.dead[docID] }

// Segment is the mutable delta overlaying one base generation. All
// mutation (Apply, Rebase) is serialized by the caller's admin gate
// and additionally by an internal mutex; reads are lock-free snapshot
// loads.
type Segment struct {
	cfg     Config
	applyMu sync.Mutex
	state   atomic.Pointer[segState]

	// baseProvider returns the full-corpus base builder of a strategy;
	// the delta builders' calibrators span it so their normalization
	// divisors are corpus-global. Set once at wiring time (guarded by
	// applyMu only because rebuilds read it there).
	baseProvider func(ontoscore.Strategy) *dil.Builder
}

// NewSegment returns an empty segment over the base corpus and its
// collection-statistics snapshot (the base builders' LocalTextStats —
// identical across strategies, since the full-text stage is
// strategy-independent).
func NewSegment(base *xmltree.Corpus, baseStats ir.Stats, cfg Config) *Segment {
	if cfg.Limits == (xmltree.Limits{}) {
		cfg.Limits = xmltree.DefaultLimits()
	}
	s := &Segment{cfg: cfg}
	s.state.Store(emptyState(base, baseStats, cfg, 1))
	return s
}

func emptyState(base *xmltree.Corpus, baseStats ir.Stats, cfg Config, version uint64) *segState {
	return &segState{
		version:   version,
		base:      base,
		baseStats: baseStats,
		builders:  map[ontoscore.Strategy]*dil.Builder{},
		live:      map[string]*docEntry{},
		byID:      map[int32]*docEntry{},
		dead:      map[int32]bool{},
		deadBase:  map[int32]string{},
		adj:       adjustment{df: map[string]int{}},
		nextID:    maxDocID(base) + 1,
	}
}

func maxDocID(c *xmltree.Corpus) int32 {
	var max int32 = -1
	for _, d := range c.Docs() {
		if d.ID > max {
			max = d.ID
		}
	}
	return max
}

// docContribution computes one document's contribution to the
// collection statistics, tokenizing exactly as the builder's full-text
// stage does: every element is one IR document (elements with no
// tokens still count toward N).
func docContribution(doc *xmltree.Document, text xmltree.TextOptions) ir.Stats {
	s := ir.Stats{DF: map[string]int{}}
	for _, n := range doc.Nodes() {
		tokens := xmltree.Tokenize(xmltree.TextDescription(n, text))
		s.N++
		s.TotalLen += int64(len(tokens))
		seen := map[string]bool{}
		for _, t := range tokens {
			if !seen[t] {
				seen[t] = true
				s.DF[t]++
			}
		}
	}
	return s
}

// ErrUnknownDocument reports a delete of a name that is neither a live
// base document nor a live delta document.
type ErrUnknownDocument struct{ Name string }

func (e ErrUnknownDocument) Error() string {
	return fmt.Sprintf("delta: unknown document %q", e.Name)
}

// Has reports whether name is currently a live document (base and not
// tombstoned, or present in the delta).
func (s *Segment) Has(name string) bool {
	st := s.state.Load()
	if _, ok := st.live[name]; ok {
		return true
	}
	if bd := st.base.DocByName(name); bd != nil && !st.dead[bd.ID] {
		return true
	}
	return false
}

// Apply folds one WAL op into the segment, publishing a new state.
// Deletes of unknown names return ErrUnknownDocument but are tolerated
// during replay (the server checks existence before logging, so a
// replayed delete can only be unknown if a later compaction raced a
// crash — in which case skipping it is correct).
func (s *Segment) Apply(op Op) error {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	next, err := s.applyToState(s.state.Load(), op)
	if err != nil {
		return err
	}
	s.state.Store(next)
	return nil
}

// applyToState builds the successor state for one op.
func (s *Segment) applyToState(cur *segState, op Op) (*segState, error) {
	next := &segState{
		version:   cur.version + 1,
		seq:       op.Seq,
		base:      cur.base,
		baseStats: cur.baseStats,
		live:      make(map[string]*docEntry, len(cur.live)+1),
		byID:      make(map[int32]*docEntry, len(cur.byID)+1),
		dead:      make(map[int32]bool, len(cur.dead)+1),
		deadBase:  make(map[int32]string, len(cur.deadBase)),
		adj:       cur.adj.clone(),
		nextID:    cur.nextID,
	}
	for k, v := range cur.live {
		next.live[k] = v
	}
	for k, v := range cur.byID {
		next.byID[k] = v
	}
	for k, v := range cur.dead {
		next.dead[k] = v
	}
	for k, v := range cur.deadBase {
		next.deadBase[k] = v
	}

	// Tombstone whatever currently answers to the name.
	supersede := func(name string) {
		if e, ok := next.live[name]; ok {
			next.dead[e.id] = true
			next.adj.add(e.stats, -1)
			delete(next.live, name)
			return
		}
		if bd := next.base.DocByName(name); bd != nil && !next.dead[bd.ID] {
			next.dead[bd.ID] = true
			next.deadBase[bd.ID] = name
			next.adj.add(docContribution(bd, s.cfg.DIL.Text), -1)
		}
	}

	switch op.Kind {
	case OpPut:
		doc, err := xmltree.ParseLimited(bytes.NewReader(op.Body), s.cfg.Limits)
		if err != nil {
			return nil, fmt.Errorf("delta: apply seq %d (%s %q): %w", op.Seq, op.Kind, op.Name, err)
		}
		supersede(op.Name)
		doc.Name = op.Name
		doc.ID = next.nextID
		next.nextID++
		doc.AssignDewey()
		owner := 0
		if s.cfg.Owner != nil {
			owner = s.cfg.Owner(op.Name)
		}
		e := &docEntry{
			id:    doc.ID,
			name:  op.Name,
			doc:   doc,
			body:  op.Body,
			stats: docContribution(doc, s.cfg.DIL.Text),
			owner: owner,
		}
		next.live[op.Name] = e
		next.byID[e.id] = e
		next.adj.add(e.stats, 1)
	case OpDelete:
		if _, ok := next.live[op.Name]; !ok {
			bd := next.base.DocByName(op.Name)
			if bd == nil || next.dead[bd.ID] {
				return nil, ErrUnknownDocument{Name: op.Name}
			}
		}
		supersede(op.Name)
	default:
		return nil, fmt.Errorf("delta: apply seq %d: unknown op kind %d", op.Seq, op.Kind)
	}

	s.rebuildBuilders(next)
	return next, nil
}

// rebuildBuilders reindexes the live delta documents into fresh
// per-strategy builders. Each builder gets a statistics view and a
// calibrator pinned to this state, so postings it produces are scored
// against the state's own global picture.
func (s *Segment) rebuildBuilders(st *segState) {
	st.builders = make(map[ontoscore.Strategy]*dil.Builder, len(s.cfg.Strategies))
	if len(st.live) == 0 {
		return
	}
	entries := make([]*docEntry, 0, len(st.live))
	for _, e := range st.live {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	corpus := xmltree.NewCorpus()
	for _, e := range entries {
		corpus.AddExisting(e.doc)
	}
	for _, strat := range s.cfg.Strategies {
		b := dil.NewMultiBuilder(corpus, s.cfg.Coll, strat, s.cfg.DIL)
		b.SetGlobalTextStatsView(stateStatsView{st})
		if bp := s.baseProvider; bp != nil {
			strat := strat
			b.SetCalibrator(stateCalibrator{s: st, strategy: strat, base: func() *dil.Builder { return bp(strat) }})
		}
		st.builders[strat] = b
	}
}

// Rebase rebuilds the segment over a new base generation (after a
// reload or compaction), replaying ops — the WAL's current records —
// through the same apply path. The version keeps counting so
// result-cache epochs never repeat.
func (s *Segment) Rebase(base *xmltree.Corpus, baseStats ir.Stats, ops []Op) error {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	cur := s.state.Load()
	next := emptyState(base, baseStats, s.cfg, cur.version+1)
	for _, op := range ops {
		n, err := s.applyToState(next, op)
		if err != nil {
			if _, unknown := err.(ErrUnknownDocument); unknown {
				continue // replayed delete already materialized by compaction
			}
			return err
		}
		next = n
	}
	s.state.Store(next)
	return nil
}

// Version is the monotonic state version (folded into serving epochs).
func (s *Segment) Version() uint64 { return s.state.Load().version }

// AppliedSeq is the last WAL sequence folded into the live state.
func (s *Segment) AppliedSeq() uint64 { return s.state.Load().seq }

// Docs is the number of live documents in the delta.
func (s *Segment) Docs() int { return len(s.state.Load().live) }

// Tombstones is the number of suppressed document IDs (tombstoned base
// documents plus superseded delta versions).
func (s *Segment) Tombstones() int { return len(s.state.Load().dead) }

// BaseTombstones is the number of tombstoned base documents — the ones
// a compaction must unlink from the source directory.
func (s *Segment) BaseTombstones() int { return len(s.state.Load().deadBase) }

// AuxDoc resolves a delta document ID for hydration (snippets,
// fragments, result document names); nil for unknown IDs. It satisfies
// core.AuxDocs.
func (s *Segment) AuxDoc(id int32) *xmltree.Document {
	if e, ok := s.state.Load().byID[id]; ok {
		return e.doc
	}
	return nil
}

// OwnerOf reports the owning shard of a delta document ID, or -1 when
// the ID is not a delta document.
func (s *Segment) OwnerOf(docID int32) int {
	if e, ok := s.state.Load().byID[docID]; ok {
		return e.owner
	}
	return -1
}

// IsDead reports whether a document ID is suppressed (tombstoned base
// or superseded delta).
func (s *Segment) IsDead(docID int32) bool { return s.state.Load().dead[docID] }

// Empty reports whether the live state carries no delta at all — no
// live documents and no tombstones (a compaction would be a no-op).
func (s *Segment) Empty() bool {
	st := s.state.Load()
	return len(st.live) == 0 && len(st.dead) == 0
}

package delta

import (
	"context"

	"repro/internal/dil"
	"repro/internal/ir"
	"repro/internal/ontoscore"
	"repro/internal/query"
)

// The exactness wiring. For live base+delta results to be
// byte-identical to a full rebuild, three global quantities must track
// the live corpus (base + delta − tombstones) rather than the frozen
// base snapshot:
//
//   - collection statistics (N, total length, DF) — served by the
//     stats views below, layered as base snapshot + adjustment;
//   - the per-keyword BM25 normalization divisor (Section III) —
//     served by the calibrator, an authoritative max over the LIVE
//     containing set of base and delta builders;
//   - the posting lists themselves — served by the query-engine
//     overlay, which drops tombstoned postings and merges the delta's.

// stateStatsView pins one segment state: installed on that state's own
// delta builders, so their scores are internally consistent with the
// snapshot a query acquired.
type stateStatsView struct{ s *segState }

func (v stateStatsView) StatsN() int { return v.s.baseStats.N + v.s.adj.n }
func (v stateStatsView) StatsTotalLen() int64 {
	return v.s.baseStats.TotalLen + v.s.adj.totalLen
}
func (v stateStatsView) StatsDF(term string) int {
	return v.s.baseStats.DF[term] + v.s.adj.df[term]
}

// liveStatsView follows the segment's current state: installed once on
// the base generation's builders, it makes their BM25 track every
// ingest without touching the builders again.
type liveStatsView struct{ seg *Segment }

func (v liveStatsView) StatsN() int {
	s := v.seg.state.Load()
	return s.baseStats.N + s.adj.n
}
func (v liveStatsView) StatsTotalLen() int64 {
	s := v.seg.state.Load()
	return s.baseStats.TotalLen + s.adj.totalLen
}
func (v liveStatsView) StatsDF(term string) int {
	s := v.seg.state.Load()
	return s.baseStats.DF[term] + s.adj.df[term]
}

// StatsView returns the live statistics view to install on base
// builders (SetGlobalTextStatsView).
func (s *Segment) StatsView() ir.StatsView { return liveStatsView{s} }

// Calibrator returns the keyword-norm calibrator for base builders of
// one strategy: the maximum raw BM25 over the live containing set,
// spanning the full base corpus (minus tombstones) and the live delta.
// The base builder is read through a provider so generation swaps
// don't strand the calibrator on a dropped builder.
func (s *Segment) Calibrator(strategy ontoscore.Strategy, base func() *dil.Builder) dil.Calibrator {
	return liveCalibrator{seg: s, strategy: strategy, base: base}
}

type liveCalibrator struct {
	seg      *Segment
	strategy ontoscore.Strategy
	base     func() *dil.Builder
}

func (c liveCalibrator) KeywordNorm(keyword string) float64 {
	st := c.seg.state.Load()
	return keywordNorm(st, c.strategy, keyword, c.base())
}

// stateCalibrator is the pinned variant installed on a state's own
// delta builders.
type stateCalibrator struct {
	s        *segState
	strategy ontoscore.Strategy
	base     func() *dil.Builder
}

func (c stateCalibrator) KeywordNorm(keyword string) float64 {
	return keywordNorm(c.s, c.strategy, keyword, c.base())
}

func keywordNorm(st *segState, strategy ontoscore.Strategy, keyword string, base *dil.Builder) float64 {
	max := 0.0
	if base != nil {
		max = base.RawTextMaxLive(keyword, st.isDead)
	}
	if db := st.builders[strategy]; db != nil {
		if m := db.RawTextMaxLive(keyword, st.isDead); m > max {
			max = m
		}
	}
	return max
}

// InstallBase wires a base builder of one strategy to this segment:
// the live statistics view and the live calibrator. Call while the
// builder is off-line (generation construction, before swap).
func (s *Segment) InstallBase(strategy ontoscore.Strategy, base func() *dil.Builder) {
	b := base()
	if b == nil {
		return
	}
	b.SetGlobalTextStatsView(s.StatsView())
	b.SetCalibrator(s.Calibrator(strategy, base))
}

// SetBaseProvider completes the delta builders' calibration: their
// normalization divisor must span the base corpus too. Called by the
// serving layer with a provider returning the full-corpus builder of
// each strategy, at wiring time (before traffic) — subsequent rebuilds
// pick it up under the apply lock.
func (s *Segment) SetBaseProvider(base func(strategy ontoscore.Strategy) *dil.Builder) {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	s.baseProvider = base
	for strat, b := range s.state.Load().builders {
		strat := strat
		b.SetCalibrator(stateCalibrator{s: s.state.Load(), strategy: strat, base: func() *dil.Builder { return base(strat) }})
	}
}

// Overlay returns the query-engine overlay for one strategy and shard
// slot. shard < 0 (or an unsharded deployment) serves every delta
// posting; a shard slot serves only postings of documents it owns —
// tombstone suppression applies everywhere, since a shard's base lists
// only ever contain its own documents.
func (s *Segment) Overlay(strategy ontoscore.Strategy, shard int) query.Overlay {
	return segOverlay{seg: s, strategy: strategy, shard: shard}
}

type segOverlay struct {
	seg      *Segment
	strategy ontoscore.Strategy
	shard    int
}

// Acquire snapshots the current state; every keyword of one query
// merges against the same snapshot.
func (o segOverlay) Acquire() query.OverlayView {
	return &segView{s: o.seg.state.Load(), strategy: o.strategy, shard: o.shard}
}

type segView struct {
	s        *segState
	strategy ontoscore.Strategy
	shard    int
}

func (v *segView) Version() uint64 { return v.s.version }

// Dirty reports whether this state diverges from the base snapshot at
// all: any live delta document or tombstone moves the collection
// statistics and normalization divisors, which invalidates every
// prebuilt base list's baked-in scores.
func (v *segView) Dirty() bool {
	return len(v.s.live) > 0 || len(v.s.dead) > 0
}

func (v *segView) Combine(ctx context.Context, keyword string, base dil.List, irOnly bool) (dil.List, bool, error) {
	st := v.s
	// Drop tombstoned base postings (copy-on-first-drop).
	filtered := base
	dropped := false
	if len(st.dead) > 0 {
		for i, p := range base {
			if st.dead[p.ID.DocID()] {
				if !dropped {
					filtered = append(dil.List{}, base[:i]...)
					dropped = true
				}
				continue
			}
			if dropped {
				filtered = append(filtered, p)
			}
		}
	}
	// Build the delta's postings for the keyword under the same NS
	// function the base list used.
	var deltaList dil.List
	if b := st.builders[v.strategy]; b != nil {
		if irOnly {
			deltaList = b.BuildKeywordIRCtx(ctx, keyword)
		} else {
			var err error
			deltaList, err = b.BuildKeywordECtx(ctx, keyword)
			if err != nil {
				return nil, false, err
			}
		}
		// Suppress superseded delta versions and, on a shard slot,
		// postings owned elsewhere.
		kept := deltaList[:0:0]
		for _, p := range deltaList {
			id := p.ID.DocID()
			if st.dead[id] {
				continue
			}
			if v.shard >= 0 {
				if e, ok := st.byID[id]; !ok || e.owner != v.shard {
					continue
				}
			}
			kept = append(kept, p)
		}
		deltaList = kept
	}
	if !dropped && len(deltaList) == 0 {
		return base, false, nil
	}
	if len(deltaList) == 0 {
		return filtered, true, nil
	}
	return mergeDewey(filtered, deltaList), true, nil
}

// mergeDewey merges two Dewey-ordered lists; base and delta documents
// are disjoint, so no key appears twice.
func mergeDewey(a, b dil.List) dil.List {
	out := make(dil.List, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].ID.Compare(b[j].ID) <= 0 {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

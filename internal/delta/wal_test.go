package delta

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/faultinject"
)

func openTestWAL(t *testing.T, path string) *WAL {
	t.Helper()
	w, err := OpenWAL(path, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

// testOps is a small op mix: puts with bodies of varying lengths and a
// delete.
func testOps() []Op {
	return []Op{
		{Kind: OpPut, Name: "alpha", Body: []byte("<doc>alpha</doc>")},
		{Kind: OpDelete, Name: "beta"},
		{Kind: OpPut, Name: "gamma", Body: make([]byte, 300)}, // >255 forces a 2-byte varint
	}
}

func appendOps(t *testing.T, w *WAL, ops []Op) {
	t.Helper()
	for _, op := range ops {
		if _, err := w.Append(op.Kind, op.Name, op.Body); err != nil {
			t.Fatal(err)
		}
	}
}

// sameOps compares logged ops ignoring Seq (which the WAL assigns).
func sameOps(got []Op, want []Op) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Kind != w.Kind || g.Name != w.Name || !reflect.DeepEqual(g.Body, w.Body) {
			return false
		}
	}
	return true
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "delta.wal")
	w := openTestWAL(t, path)
	appendOps(t, w, testOps())
	if got := w.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	if got := w.LastSeq(); got != 3 {
		t.Fatalf("LastSeq = %d, want 3", got)
	}
	w.Close()

	r := openTestWAL(t, path)
	if !sameOps(r.Ops(), testOps()) {
		t.Fatalf("replayed ops diverge: %+v", r.Ops())
	}
	for i, op := range r.Ops() {
		if op.Seq != uint64(i+1) {
			t.Fatalf("op %d has seq %d", i, op.Seq)
		}
	}
	// The reopened log keeps numbering where it left off.
	op, err := r.Append(OpDelete, "alpha", nil)
	if err != nil {
		t.Fatal(err)
	}
	if op.Seq != 4 {
		t.Fatalf("appended seq = %d, want 4", op.Seq)
	}
}

func TestWALTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "delta.wal")
	w := openTestWAL(t, path)
	appendOps(t, w, testOps())
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if got := w.Count(); got != 0 {
		t.Fatalf("Count after truncate = %d", got)
	}
	// Sequence numbering continues within the process lifetime.
	op, err := w.Append(OpPut, "delta", []byte("<doc/>"))
	if err != nil {
		t.Fatal(err)
	}
	if op.Seq != 4 {
		t.Fatalf("seq after truncate = %d, want 4", op.Seq)
	}
	w.Close()
	r := openTestWAL(t, path)
	if r.Count() != 1 || r.Ops()[0].Name != "delta" {
		t.Fatalf("replay after truncate: %+v", r.Ops())
	}
}

// TestWALTornTailEveryPrefix is the kill-anywhere property at the
// durable-state level: a crash leaves some prefix of the log file (the
// frame write precedes the fsync), and every possible prefix must
// recover exactly the fully-framed records without error.
func TestWALTornTailEveryPrefix(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	w := openTestWAL(t, full)
	appendOps(t, w, testOps())
	w.Close()
	buf, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries: offsets at which a whole record ends.
	ends := []int64{int64(len(walMagic))}
	r := openTestWAL(t, full)
	off := int64(len(walMagic))
	for _, op := range r.Ops() {
		off += 8 + int64(len(encodeOp(op)))
		ends = append(ends, off)
	}
	r.Close()
	if ends[len(ends)-1] != int64(len(buf)) {
		t.Fatalf("frame arithmetic: computed end %d, file %d", ends[len(ends)-1], len(buf))
	}

	wholeAt := func(cut int64) int {
		n := 0
		for _, e := range ends[1:] {
			if cut >= e {
				n++
			}
		}
		return n
	}
	for cut := int64(0); cut <= int64(len(buf)); cut++ {
		path := filepath.Join(dir, "cut.wal")
		if err := os.WriteFile(path, buf[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cw, err := OpenWAL(path, func(string, ...any) {})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got, want := cw.Count(), wholeAt(cut); got != want {
			cw.Close()
			t.Fatalf("cut %d: recovered %d records, want %d", cut, got, want)
		}
		// Recovery leaves an appendable log.
		if _, err := cw.Append(OpDelete, "post-recovery", nil); err != nil {
			cw.Close()
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		cw.Close()
		rw, err := OpenWAL(path, func(string, ...any) {})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if got := rw.Count(); got != wholeAt(cut)+1 {
			rw.Close()
			t.Fatalf("cut %d: %d records after recovery append", cut, got)
		}
		rw.Close()
	}
}

// TestWALZeroTail covers preallocated/zero-filled tail space: recovery
// truncates it and keeps every record.
func TestWALZeroTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "delta.wal")
	w := openTestWAL(t, path)
	appendOps(t, w, testOps())
	w.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	r := openTestWAL(t, path)
	if !sameOps(r.Ops(), testOps()) {
		t.Fatalf("ops after zero tail: %+v", r.Ops())
	}
}

// TestWALMidFileCorruption: a flipped byte anywhere before the tail is
// corruption, not a torn write — recovery must refuse rather than
// silently drop acknowledged operations.
func TestWALMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "delta.wal")
	w := openTestWAL(t, path)
	appendOps(t, w, testOps())
	w.Close()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the first record (offset: header + frame
	// header + first payload byte).
	buf[len(walMagic)+8] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(path, func(string, ...any) {}); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestWALBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "delta.wal")
	if err := os.WriteFile(path, []byte("NOTAWAL0junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(path, func(string, ...any) {}); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestWALTornHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "delta.wal")
	if err := os.WriteFile(path, []byte(walMagic[:3]), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWAL(path, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Count() != 0 {
		t.Fatalf("records out of a torn header: %d", w.Count())
	}
	if _, err := w.Append(OpPut, "x", []byte("<d/>")); err != nil {
		t.Fatal(err)
	}
}

// TestWALRecordLengthCorruption: a non-zero garbage length field
// mid-tail must be rejected (only an all-zero tail is torn space).
func TestWALRecordLengthCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "delta.wal")
	w := openTestWAL(t, path)
	appendOps(t, w, testOps())
	w.Close()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 8)
	binary.LittleEndian.PutUint32(frame[:4], maxWALRecord+1)
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(nil, castagnoli))
	if err := os.WriteFile(path, append(buf, frame...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(path, func(string, ...any) {}); err == nil {
		t.Fatal("oversized record length accepted")
	}
}

// TestWALAppendCrashSoak arms the append failpoint at every kill site
// (each append has two: pre-write and pre-sync) and verifies the
// invariant the server's ack depends on: a failed append is fully
// rolled back — never acknowledged, never replayed — and the log stays
// usable for the retry and every later append.
func TestWALAppendCrashSoak(t *testing.T) {
	t.Cleanup(faultinject.DisableAll)
	ops := testOps()
	const hitsPerAppend = 2
	for k := 0; k < len(ops)*hitsPerAppend; k++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "delta.wal")
		w := openTestWAL(t, path)
		faultinject.Enable(FPAppend, faultinject.Spec{After: int64(k), Count: 1})
		failures := 0
		for _, op := range ops {
			_, err := w.Append(op.Kind, op.Name, op.Body)
			if err != nil {
				failures++
				// The client retry: must succeed now that the fault has
				// burned.
				if _, rerr := w.Append(op.Kind, op.Name, op.Body); rerr != nil {
					t.Fatalf("kill %d: retry failed: %v", k, rerr)
				}
			}
		}
		faultinject.DisableAll()
		if failures != 1 {
			t.Fatalf("kill %d: %d failures, want exactly 1", k, failures)
		}
		w.Close()
		r := openTestWAL(t, path)
		if !sameOps(r.Ops(), ops) {
			t.Fatalf("kill %d: replay diverges: %+v", k, r.Ops())
		}
		r.Close()
	}
}

// An op whose encoded payload exceeds the frame limit is refused
// before anything reaches the file: OpenWAL treats such a length as a
// corrupt record, so writing it would poison the log mid-file and lose
// every acknowledged op behind it on the next start.
func TestWALAppendRejectsOversizedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "delta.wal")
	w := openTestWAL(t, path)
	if _, err := w.Append(OpPut, "small", []byte("<doc/>")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(OpPut, "huge", make([]byte, maxWALRecord+1)); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized append error = %v, want ErrRecordTooLarge", err)
	}
	// The rejection left the log untouched and usable.
	if n := w.Count(); n != 1 {
		t.Fatalf("Count after rejected append = %d, want 1", n)
	}
	if _, err := w.Append(OpPut, "after", []byte("<doc>ok</doc>")); err != nil {
		t.Fatalf("append after rejection: %v", err)
	}
	w.Close()
	r := openTestWAL(t, path)
	if !sameOps(r.Ops(), []Op{
		{Kind: OpPut, Name: "small", Body: []byte("<doc/>")},
		{Kind: OpPut, Name: "after", Body: []byte("<doc>ok</doc>")},
	}) {
		t.Fatalf("replay after rejected append diverges: %+v", r.Ops())
	}
}

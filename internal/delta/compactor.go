package delta

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// CompactorConfig tunes the background compaction loop.
type CompactorConfig struct {
	// Interval is the periodic check cadence; <= 0 disables the timer
	// (compactions then run only on Kick).
	Interval time.Duration
	// MaxDocs kicks an early compaction when the delta holds at least
	// this many live documents (<= 0: no doc-count trigger).
	MaxDocs int
	// MaxTombstones kicks an early compaction at this many suppressed
	// documents (<= 0: no tombstone trigger).
	MaxTombstones int
	// Run performs one compaction cycle (under the serving layer's
	// admin gate). It must return nil when it skipped benignly (gate
	// busy, nothing to do).
	Run func(ctx context.Context) error
	// Pending reports the current delta lag; the timer skips cycles
	// with nothing pending.
	Pending func() (docs, tombstones, walRecords int)
	// Logf receives failure reports; nil discards them.
	Logf func(format string, args ...any)
}

// Compactor periodically folds the delta into a fresh base generation.
// The loop is a plain select over a kick channel, a timer, and a stop
// channel; a failed cycle keeps the old generation serving and is
// retried on the next trigger.
type Compactor struct {
	cfg  CompactorConfig
	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	startOnce sync.Once
	stopOnce  sync.Once
	started   atomic.Bool

	runs        atomic.Uint64
	failures    atomic.Uint64
	lastSuccess atomic.Int64 // unix nanos; 0 = never
}

// NewCompactor returns an idle compactor; call Start to run the loop.
func NewCompactor(cfg CompactorConfig) *Compactor {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Compactor{
		cfg:  cfg,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Start launches the background loop (idempotent).
func (c *Compactor) Start() {
	c.startOnce.Do(func() {
		c.started.Store(true)
		go c.loop()
	})
}

// Stop terminates the loop and waits for any in-flight cycle to
// finish (idempotent; a no-op when the loop never started).
func (c *Compactor) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	if c.started.Load() {
		<-c.done
	}
}

// Kick requests an immediate compaction cycle (non-blocking; collapses
// with an already-pending kick).
func (c *Compactor) Kick() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// MaybeKick kicks when the configured size thresholds are exceeded;
// the serving layer calls it after every applied ingest.
func (c *Compactor) MaybeKick() {
	if c.cfg.Pending == nil {
		return
	}
	docs, tombs, _ := c.cfg.Pending()
	if (c.cfg.MaxDocs > 0 && docs >= c.cfg.MaxDocs) ||
		(c.cfg.MaxTombstones > 0 && tombs >= c.cfg.MaxTombstones) {
		c.Kick()
	}
}

// Runs reports completed and failed cycle counts.
func (c *Compactor) Runs() (runs, failures uint64) {
	return c.runs.Load(), c.failures.Load()
}

// LastSuccess is the wall time of the last successful cycle (zero time
// if none yet).
func (c *Compactor) LastSuccess() time.Time {
	ns := c.lastSuccess.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

func (c *Compactor) loop() {
	defer close(c.done)
	var tick <-chan time.Time
	if c.cfg.Interval > 0 {
		t := time.NewTicker(c.cfg.Interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-c.stop:
			return
		case <-c.kick:
			c.cycle()
		case <-tick:
			if c.cfg.Pending != nil {
				docs, tombs, wal := c.cfg.Pending()
				if docs == 0 && tombs == 0 && wal == 0 {
					continue
				}
			}
			c.cycle()
		}
	}
}

func (c *Compactor) cycle() {
	if c.cfg.Run == nil {
		return
	}
	c.runs.Add(1)
	if err := c.cfg.Run(context.Background()); err != nil {
		c.failures.Add(1)
		c.cfg.Logf("delta: compaction failed (old generation keeps serving): %v", err)
		return
	}
	c.lastSuccess.Store(time.Now().UnixNano())
}

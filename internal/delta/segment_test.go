package delta

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/dil"
	"repro/internal/ontoscore"
	"repro/internal/xmltree"
)

// wireSegment attaches a fresh segment to a system, the way the
// serving layer does: base statistics snapshot from the full-text
// stage, live statistics view and calibrator on the base builder, base
// provider for the delta builders' calibration, overlay on the query
// engine, auxiliary documents for hydration.
func wireSegment(sys *core.System, strat ontoscore.Strategy, cfg Config) *Segment {
	seg := NewSegment(sys.Corpus(), sys.Builder().LocalTextStats(), cfg)
	seg.InstallBase(strat, func() *dil.Builder { return sys.Builder() })
	seg.SetBaseProvider(func(ontoscore.Strategy) *dil.Builder { return sys.Builder() })
	sys.SetOverlay(seg.Overlay(strat, -1))
	sys.SetAuxDocs(seg)
	return seg
}

// compareSearches asserts two systems answer every test query
// identically — results (Dewey IDs, exact float scores, document
// names, element paths, keyword matches) and snippets alike — over
// both the DIL and the RDIL merge, at several (k, offset) windows so
// the block-max top-k pruning stays exact under a delta overlay too
// (overlaid keywords merge as plain lists; base-only keywords keep
// their compact block bounds).
func compareSearches(t *testing.T, label string, got, want *core.System) {
	t.Helper()
	windows := []struct{ k, offset int }{{10, 0}, {1, 0}, {3, 2}}
	for _, q := range testQueries {
		for _, ranked := range []bool{false, true} {
			for _, win := range windows {
				req := core.SearchRequest{Query: q, K: win.k, Offset: win.offset, Ranked: ranked, Explain: true}
				g, err := got.Query(context.Background(), req)
				if err != nil {
					t.Fatalf("%s: query %q: %v", label, q, err)
				}
				w, err := want.Query(context.Background(), req)
				if err != nil {
					t.Fatalf("%s: reference query %q: %v", label, q, err)
				}
				if !reflect.DeepEqual(g.Results, w.Results) {
					t.Errorf("%s: query %q ranked=%v k=%d offset=%d: results diverge\n got: %+v\nwant: %+v",
						label, q, ranked, win.k, win.offset, g.Results, w.Results)
				}
				if !reflect.DeepEqual(g.Snippets, w.Snippets) {
					t.Errorf("%s: query %q ranked=%v k=%d offset=%d: snippets diverge\n got: %q\nwant: %q",
						label, q, ranked, win.k, win.offset, g.Snippets, w.Snippets)
				}
			}
		}
	}
}

// scriptOp is one mutation of the differential script; body names the
// fixture document whose serialized form is put (replacements put a
// different document's content under an existing name).
type scriptOp struct {
	kind OpKind
	name string
	body string
}

// differentialScript exercises every delta transition over a base of
// baseN documents: adds, a replace of a base document, a base
// tombstone, a delete of a delta document, and a replace of a delta
// document.
func differentialScript(fx *fixture) []scriptOp {
	n := fx.names
	return []scriptOp{
		{OpPut, n[6], n[6]},  // add
		{OpPut, n[7], n[7]},  // add
		{OpPut, n[2], n[8]},  // replace base document content
		{OpDelete, n[3], ""}, // tombstone base document
		{OpPut, n[9], n[9]},  // add ...
		{OpDelete, n[9], ""}, // ... and delete it again (delta tombstone)
		{OpPut, n[6], n[3]},  // replace a delta document
	}
}

// trackScript independently computes the expected end state of a
// script: the live body per name and the delta-assigned document ID
// per delta-resident name.
func trackScript(fx *fixture, baseN int, script []scriptOp) (live map[string]string, deltaID map[string]int32) {
	live = map[string]string{}
	for _, n := range fx.names[:baseN] {
		live[n] = n
	}
	deltaID = map[string]int32{}
	nextID := int32(baseN) // base corpus assigned 0..baseN-1
	for _, o := range script {
		if o.kind == OpPut {
			live[o.name] = o.body
			deltaID[o.name] = nextID
			nextID++
		} else {
			delete(live, o.name)
			delete(deltaID, o.name)
		}
	}
	return live, deltaID
}

// replayScript applies the script to a segment op by op.
func replayScript(t *testing.T, seg *Segment, fx *fixture, script []scriptOp) {
	t.Helper()
	for i, o := range script {
		op := Op{Seq: uint64(i + 1), Kind: o.kind, Name: o.name}
		if o.kind == OpPut {
			op.Body = fx.bodies[o.body]
		}
		if err := seg.Apply(op); err != nil {
			t.Fatalf("apply %d (%s %s): %v", i+1, o.kind, o.name, err)
		}
	}
}

// referenceCorpus assembles the corpus a full rebuild would produce
// for the tracked end state: surviving base documents keep their
// nodes and IDs; delta documents are re-parsed from their bodies and
// carry the IDs the segment assigned.
func referenceCorpus(t *testing.T, fx *fixture, base *xmltree.Corpus, live map[string]string, deltaID map[string]int32) *xmltree.Corpus {
	t.Helper()
	ref := xmltree.NewCorpus()
	for _, d := range base.Docs() {
		if _, isDelta := deltaID[d.Name]; isDelta {
			continue // replaced: the delta's version wins
		}
		if _, ok := live[d.Name]; !ok {
			continue // tombstoned
		}
		ref.AddExisting(d)
	}
	names := make([]string, 0, len(deltaID))
	for name := range deltaID {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return deltaID[names[i]] < deltaID[names[j]] })
	for _, name := range names {
		doc := fx.parse(t, name, fx.bodies[live[name]])
		doc.ID = deltaID[name]
		doc.AssignDewey()
		ref.AddExisting(doc)
	}
	return ref
}

// TestDifferentialBaseDeltaVsRebuild is the exactness contract: after
// any mix of adds, replacements and deletions, a base+delta system
// answers byte-identically to a system rebuilt from scratch over the
// resulting document set — across all four OntoScore strategies and
// both merge algorithms.
func TestDifferentialBaseDeltaVsRebuild(t *testing.T) {
	fx := newFixture(t, 9, 7)
	const baseN = 6
	for _, strat := range ontoscore.Strategies() {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			cfg := core.DefaultConfig()
			cfg.Strategy = strat
			base := fx.baseCorpus(t, baseN)
			sys := core.NewMulti(base, fx.coll, cfg)
			seg := wireSegment(sys, strat, Config{
				Coll: fx.coll, Strategies: []ontoscore.Strategy{strat}, DIL: cfg.DIL,
			})

			// A clean overlay must not perturb anything.
			plain := core.NewMulti(fx.baseCorpus(t, baseN), fx.coll, cfg)
			compareSearches(t, "clean overlay", sys, plain)

			script := differentialScript(fx)
			replayScript(t, seg, fx, script)
			live, deltaID := trackScript(fx, baseN, script)

			ref := referenceCorpus(t, fx, base, live, deltaID)
			refSys := core.NewMulti(ref, fx.coll, cfg)
			compareSearches(t, "after script", sys, refSys)

			if got, want := seg.Docs(), 3; got != want {
				t.Errorf("live delta docs = %d, want %d", got, want)
			}
			if got, want := seg.BaseTombstones(), 2; got != want {
				t.Errorf("base tombstones = %d, want %d", got, want)
			}
		})
	}
}

// TestDifferentialAfterRebase re-runs the comparison after a rebase
// with pending ops — the crash-recovery shape, where a reload happens
// while the WAL still holds unapplied records.
func TestDifferentialAfterRebase(t *testing.T) {
	fx := newFixture(t, 9, 7)
	const baseN = 6
	strat := ontoscore.StrategyRelationships
	cfg := core.DefaultConfig()
	cfg.Strategy = strat

	base := fx.baseCorpus(t, baseN)
	sys := core.NewMulti(base, fx.coll, cfg)
	seg := wireSegment(sys, strat, Config{
		Coll: fx.coll, Strategies: []ontoscore.Strategy{strat}, DIL: cfg.DIL,
	})

	script := differentialScript(fx)
	ops := make([]Op, 0, len(script))
	for i, o := range script {
		op := Op{Seq: uint64(i + 1), Kind: o.kind, Name: o.name}
		if o.kind == OpPut {
			op.Body = fx.bodies[o.body]
		}
		ops = append(ops, op)
	}
	before := seg.Version()
	if err := seg.Rebase(base, sys.Builder().LocalTextStats(), ops); err != nil {
		t.Fatal(err)
	}
	if seg.Version() <= before {
		t.Fatalf("version did not advance across rebase: %d -> %d", before, seg.Version())
	}

	live, deltaID := trackScript(fx, baseN, script)
	ref := referenceCorpus(t, fx, base, live, deltaID)
	refSys := core.NewMulti(ref, fx.coll, cfg)
	compareSearches(t, "after rebase", sys, refSys)
}

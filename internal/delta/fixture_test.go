package delta

import (
	"bytes"
	"testing"

	"repro/internal/cda"
	"repro/internal/ontology"
	"repro/internal/xmltree"
)

// fixture is a deterministic document set rendered to bytes — the form
// documents take on the wire (/admin/ingest bodies) and on disk (the
// source directory a compaction materializes into).
type fixture struct {
	coll   *ontology.Collection
	names  []string          // stable order: Figure 1 first, then generated
	bodies map[string][]byte // serialized XML per name
}

func newFixture(t *testing.T, docs int, seed int64) *fixture {
	t.Helper()
	ont, err := ontology.Generate(ontology.GenConfig{Seed: seed, ExtraConcepts: 80, SynonymProb: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{bodies: map[string][]byte{}}
	fig1, err := cda.GenerateFigure1(ont)
	if err != nil {
		t.Fatal(err)
	}
	f.names = append(f.names, fig1.Name)
	f.bodies[fig1.Name] = renderDoc(t, fig1)
	g, err := cda.NewGenerator(cda.GenConfig{
		Seed: seed, NumDocuments: docs, ProblemsPerPatient: 3,
		MedicationsPerPatient: 3, ProceduresPerPatient: 2,
	}, ont)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range g.GenerateCorpus().Docs() {
		f.names = append(f.names, d.Name)
		f.bodies[d.Name] = renderDoc(t, d)
	}
	f.coll = ontology.MustCollection(ont, ontology.LOINCFragment())
	return f
}

func renderDoc(t *testing.T, doc *xmltree.Document) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := xmltree.WriteXML(&buf, doc.Root); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// baseCorpus parses the first n fixture documents into a corpus, the
// way a generation build reads them off the source directory.
func (f *fixture) baseCorpus(t *testing.T, n int) *xmltree.Corpus {
	t.Helper()
	corpus := xmltree.NewCorpus()
	for _, name := range f.names[:n] {
		corpus.Add(f.parse(t, name, f.bodies[name]))
	}
	return corpus
}

// parse decodes a body exactly as Segment.Apply does.
func (f *fixture) parse(t *testing.T, name string, body []byte) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseLimited(bytes.NewReader(body), xmltree.DefaultLimits())
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	doc.Name = name
	return doc
}

// testQueries covers single keywords, multi-keyword conjunctions,
// phrases, ontology-heavy terms, and a miss.
var testQueries = []string{
	"asthma",
	"asthma medications",
	`"bronchial structure" theophylline`,
	"cardiac arrest",
	"patient problems procedure",
	"zzznothing",
}

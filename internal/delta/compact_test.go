package delta

import (
	"context"
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dil"
	"repro/internal/faultinject"
	"repro/internal/ir"
)

// materializeFixture builds a source directory holding the base
// documents, a segment with a mixed delta over them, and a WAL holding
// the script — the exact state a compaction starts from.
type materializeFixture struct {
	fx     *fixture
	dir    string
	seg    *Segment
	wal    *WAL
	script []scriptOp
}

func newMaterializeFixture(t *testing.T) *materializeFixture {
	t.Helper()
	fx := newFixture(t, 9, 7)
	const baseN = 6
	dir := t.TempDir()
	for _, name := range fx.names[:baseN] {
		if err := os.WriteFile(filepath.Join(dir, name+".xml"), fx.bodies[name], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	base := fx.baseCorpus(t, baseN)
	seg := NewSegment(base, ir.Stats{}, Config{Coll: fx.coll, DIL: dil.DefaultParams()})
	wal, err := OpenWAL(filepath.Join(t.TempDir(), "delta.wal"), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wal.Close() })
	script := differentialScript(fx)
	for _, o := range script {
		op, err := wal.Append(o.kind, o.name, fx.bodies[o.body])
		if err != nil {
			t.Fatal(err)
		}
		if err := seg.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	return &materializeFixture{fx: fx, dir: dir, seg: seg, wal: wal, script: script}
}

// dirSnapshot hashes every .xml file in a directory.
func dirSnapshot(t *testing.T, dir string) map[string][32]byte {
	t.Helper()
	out := map[string][32]byte{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".xml" {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = sha256.Sum256(buf)
	}
	return out
}

func sameSnapshot(a, b map[string][32]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestMaterialize verifies the source directory after an uninterrupted
// compaction holds exactly the live document set: surviving base
// files, delta documents (adds and replacements), and no tombstoned
// files.
func TestMaterialize(t *testing.T) {
	m := newMaterializeFixture(t)
	if err := m.seg.Materialize(m.dir); err != nil {
		t.Fatal(err)
	}
	if err := TruncateWAL(m.wal); err != nil {
		t.Fatal(err)
	}
	if got := m.wal.Count(); got != 0 {
		t.Fatalf("wal records after compaction: %d", got)
	}
	live, _ := trackScript(m.fx, 6, m.script)
	snap := dirSnapshot(t, m.dir)
	if len(snap) != len(live) {
		t.Fatalf("directory holds %d files, want %d live documents", len(snap), len(live))
	}
	for name, src := range live {
		want := sha256.Sum256(m.fx.bodies[src])
		got, ok := snap[name+".xml"]
		if !ok {
			t.Fatalf("missing %s.xml", name)
		}
		if got != want {
			t.Fatalf("%s.xml content diverges from live body %q", name, src)
		}
	}
}

// TestCompactionCrashSoak kills the compaction at every failpoint site
// (temp write, rename, unlink, directory sync, WAL truncation) and
// verifies the two recovery guarantees: the WAL keeps its records when
// the kill landed before truncation, and a retry converges to exactly
// the uninterrupted result.
func TestCompactionCrashSoak(t *testing.T) {
	t.Cleanup(faultinject.DisableAll)

	// Reference: the uninterrupted run.
	ref := newMaterializeFixture(t)
	if err := ref.seg.Materialize(ref.dir); err != nil {
		t.Fatal(err)
	}
	if err := TruncateWAL(ref.wal); err != nil {
		t.Fatal(err)
	}
	want := dirSnapshot(t, ref.dir)

	kills := 0
	for k := 0; ; k++ {
		m := newMaterializeFixture(t)
		// A previous crash may also have left a stray temp file behind.
		if err := os.WriteFile(filepath.Join(m.dir, ".delta-stale.tmp"), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
		faultinject.Enable(FPCompact, faultinject.Spec{After: int64(k), Count: 1})
		err := m.seg.Materialize(m.dir)
		if err == nil {
			err = TruncateWAL(m.wal)
		}
		faultinject.DisableAll()
		if err == nil {
			// k is past the last failpoint site: the soak covered them all.
			if kills == 0 {
				t.Fatal("no kill sites enumerated")
			}
			t.Logf("soaked %d kill sites", kills)
			break
		}
		kills++
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("kill %d: unexpected error: %v", k, err)
		}
		// Crashed before the WAL truncated: every op must still be there.
		if got := m.wal.Count(); got != len(m.script) {
			t.Fatalf("kill %d: wal lost records before truncation: %d/%d", k, got, len(m.script))
		}
		// The retry (next compaction cycle) must converge.
		if err := m.seg.Materialize(m.dir); err != nil {
			t.Fatalf("kill %d: retry: %v", k, err)
		}
		if err := TruncateWAL(m.wal); err != nil {
			t.Fatalf("kill %d: retry truncate: %v", k, err)
		}
		if got := dirSnapshot(t, m.dir); !sameSnapshot(got, want) {
			t.Fatalf("kill %d: retried compaction diverges from uninterrupted run", k)
		}
		if got := m.wal.Count(); got != 0 {
			t.Fatalf("kill %d: wal records after retry: %d", k, got)
		}
	}
}

// TestCompactorLoop drives the background loop: threshold kicks, the
// failure path (old generation keeps serving, cycle retried), and
// success bookkeeping.
func TestCompactorLoop(t *testing.T) {
	var runs atomic.Int32
	fail := atomic.Bool{}
	fail.Store(true)
	ran := make(chan struct{}, 16)
	pendingDocs := atomic.Int32{}
	pendingDocs.Store(5)
	c := NewCompactor(CompactorConfig{
		MaxDocs: 3,
		Run: func(context.Context) error {
			runs.Add(1)
			ran <- struct{}{}
			if fail.Load() {
				return errors.New("injected reload failure")
			}
			pendingDocs.Store(0)
			return nil
		},
		Pending: func() (int, int, int) { return int(pendingDocs.Load()), 0, 0 },
		Logf:    t.Logf,
	})
	c.Start()
	defer c.Stop()

	c.MaybeKick() // 5 docs >= MaxDocs 3
	waitRan(t, ran)
	if r, f := c.Runs(); r != 1 || f != 1 {
		t.Fatalf("after failed cycle: runs=%d failures=%d", r, f)
	}
	if !c.LastSuccess().IsZero() {
		t.Fatal("failed cycle recorded a success")
	}

	fail.Store(false)
	c.Kick()
	waitRan(t, ran)
	if r, f := c.Runs(); r != 2 || f != 1 {
		t.Fatalf("after successful cycle: runs=%d failures=%d", r, f)
	}
	if c.LastSuccess().IsZero() {
		t.Fatal("successful cycle did not record")
	}

	// Below threshold: MaybeKick stays quiet.
	c.MaybeKick()
	select {
	case <-ran:
		t.Fatal("MaybeKick fired below threshold")
	case <-time.After(50 * time.Millisecond):
	}
}

func waitRan(t *testing.T, ran chan struct{}) {
	t.Helper()
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("compactor cycle did not run")
	}
}

// Package delta implements live incremental indexing: a crash-safe
// write-ahead log and a small mutable delta segment that absorb
// single-document adds, replacements, and deletions (tombstones)
// between full generation rebuilds, LSM-style. Queries merge base +
// delta posting lists with tombstone suppression through the query
// engine's overlay hook, and a background compactor periodically folds
// the delta into a fresh base generation via the existing refcounted
// atomic-swap reload machinery.
//
// Durability contract: an acknowledged ingest has been fsynced into
// the WAL before the response is written, so it survives a kill at any
// instruction; on restart the WAL replays over the rebuilt base
// through the same apply path. The WAL is truncated only after a
// compaction has durably materialized its effects into the source
// directory (write + fsync + rename + directory sync), so there is no
// window in which an acknowledged operation exists nowhere durable.
package delta

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/faultinject"
)

// Failpoints at the delta subsystem's durability boundaries (armed by
// the crash-soak tests; inert in production).
const (
	// FPAppend fires twice per WAL append: before the frame write and
	// before the fsync. An injected error aborts the append with the
	// file rolled back to its pre-append length — exactly the state a
	// crash at that instruction leaves behind after torn-tail recovery.
	FPAppend = "delta.append"
	// FPCompact fires before each durability point of a compaction
	// (per-document temp write, rename, tombstone unlink, directory
	// sync, WAL truncation). An injected error aborts the compaction;
	// the old generation keeps serving and the WAL keeps its records.
	FPCompact = "delta.compact"
)

// OpKind discriminates WAL operations.
type OpKind uint8

const (
	// OpPut adds or replaces one document.
	OpPut OpKind = 1
	// OpDelete tombstones one document.
	OpDelete OpKind = 2
)

func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one logged ingest operation. Body is the validated XML source
// for OpPut, empty for OpDelete. Seq is assigned by the WAL and
// increases monotonically within one process lifetime; after a
// truncation (compaction) and a restart, numbering may restart from 1.
// Replay correctness depends only on in-log order, never on global
// uniqueness of Seq.
type Op struct {
	Seq  uint64
	Kind OpKind
	Name string
	Body []byte
}

// walMagic is the 8-byte file header; the version byte is part of it.
const walMagic = "XWAL1\x00\x00\x00"

// maxWALRecord bounds one record's payload; OpenWAL treats larger
// lengths as corruption, so Append must refuse to write them in the
// first place (see ErrRecordTooLarge).
const maxWALRecord = 64 << 20

// ErrRecordTooLarge reports an op whose encoded payload exceeds the
// WAL framing bound. Append rejects such ops before writing anything:
// a frame this large would be accepted today and then rejected by
// OpenWAL as a corrupt record length on the next start, poisoning the
// log mid-file and losing every acknowledged op behind it.
var ErrRecordTooLarge = errors.New("record exceeds WAL frame limit")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeOp flattens an op into a WAL record payload: kind byte,
// uvarint seq, uvarint name length + name, uvarint body length + body.
// The payload is never empty (the kind byte), so an all-zero frame can
// never decode as a valid record.
func encodeOp(op Op) []byte {
	buf := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(op.Name)+len(op.Body)+binary.MaxVarintLen64)
	buf = append(buf, byte(op.Kind))
	buf = binary.AppendUvarint(buf, op.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(op.Name)))
	buf = append(buf, op.Name...)
	buf = binary.AppendUvarint(buf, uint64(len(op.Body)))
	buf = append(buf, op.Body...)
	return buf
}

func decodeOp(payload []byte) (Op, error) {
	if len(payload) == 0 {
		return Op{}, fmt.Errorf("empty payload")
	}
	op := Op{Kind: OpKind(payload[0])}
	if op.Kind != OpPut && op.Kind != OpDelete {
		return Op{}, fmt.Errorf("unknown op kind %d", payload[0])
	}
	rest := payload[1:]
	var n int
	op.Seq, n = binary.Uvarint(rest)
	if n <= 0 {
		return Op{}, fmt.Errorf("bad seq varint")
	}
	rest = rest[n:]
	nameLen, n := binary.Uvarint(rest)
	if n <= 0 || nameLen > uint64(len(rest)-n) {
		return Op{}, fmt.Errorf("bad name length")
	}
	rest = rest[n:]
	op.Name = string(rest[:nameLen])
	if op.Name == "" {
		return Op{}, fmt.Errorf("empty document name")
	}
	rest = rest[nameLen:]
	bodyLen, n := binary.Uvarint(rest)
	if n <= 0 || bodyLen != uint64(len(rest)-n) {
		return Op{}, fmt.Errorf("bad body length")
	}
	if bodyLen > 0 {
		op.Body = append([]byte(nil), rest[n:]...)
	}
	if op.Kind == OpDelete && len(op.Body) != 0 {
		return Op{}, fmt.Errorf("delete op with body")
	}
	return op, nil
}

// WAL is the crash-safe write-ahead log of live ingest operations.
// Framing per record: u32le payload length, u32le CRC32-C of the
// payload, payload. Appends are fsynced before they return; replay
// tolerates a torn frame at the tail (a crash mid-write) by truncating
// it, and rejects corruption anywhere else.
type WAL struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	off    int64 // committed append offset
	seq    uint64
	ops    []Op // records currently in the log, replay order
	broken error
}

// OpenWAL opens (creating if absent) the WAL at path and replays its
// records. A torn trailing frame is truncated and reported through
// logf; corruption before the tail is an error.
func OpenWAL(path string, logf func(format string, args ...any)) (*WAL, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("delta: wal: %w", err)
	}
	w := &WAL{f: f, path: path}
	buf, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("delta: wal: %w", err)
	}
	if len(buf) == 0 {
		if _, err := f.Write([]byte(walMagic)); err != nil {
			f.Close()
			return nil, fmt.Errorf("delta: wal: writing header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("delta: wal: %w", err)
		}
		syncDir(filepath.Dir(path))
		w.off = int64(len(walMagic))
		return w, nil
	}
	if len(buf) < len(walMagic) || string(buf[:len(walMagic)]) != walMagic {
		// A header shorter than 8 bytes can only be a crash during
		// creation (the header write is the file's first ever write); a
		// full-length mismatch is somebody else's file.
		if len(buf) < len(walMagic) && isZeroOrPrefix(buf) {
			logf("delta: wal: torn header (%d bytes), reinitializing", len(buf))
			if err := w.reset(); err != nil {
				f.Close()
				return nil, err
			}
			return w, nil
		}
		f.Close()
		return nil, fmt.Errorf("delta: wal: %s: bad magic", path)
	}
	off := int64(len(walMagic))
	for {
		rest := buf[off:]
		if len(rest) == 0 {
			break
		}
		torn := func(why string) bool {
			logf("delta: wal: truncating torn tail at offset %d (%s)", off, why)
			return true
		}
		if len(rest) < 8 {
			if !torn("short frame header") {
				break
			}
			if err := w.truncateTo(off); err != nil {
				f.Close()
				return nil, err
			}
			break
		}
		length := binary.LittleEndian.Uint32(rest[:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if length == 0 || length > maxWALRecord {
			// A zero-length frame cannot be valid (payloads are never
			// empty); an all-zero tail is preallocated/torn space, any
			// other content is corruption.
			if allZero(rest) {
				torn("zero tail")
				if err := w.truncateTo(off); err != nil {
					f.Close()
					return nil, err
				}
				break
			}
			f.Close()
			return nil, fmt.Errorf("delta: wal: %s: corrupt record length %d at offset %d", path, length, off)
		}
		if uint64(len(rest)-8) < uint64(length) {
			torn("short payload")
			if err := w.truncateTo(off); err != nil {
				f.Close()
				return nil, err
			}
			break
		}
		payload := rest[8 : 8+length]
		atEOF := off+8+int64(length) == int64(len(buf))
		if crc32.Checksum(payload, castagnoli) != sum {
			if atEOF {
				torn("checksum mismatch at tail")
				if err := w.truncateTo(off); err != nil {
					f.Close()
					return nil, err
				}
				break
			}
			f.Close()
			return nil, fmt.Errorf("delta: wal: %s: checksum mismatch at offset %d", path, off)
		}
		op, derr := decodeOp(payload)
		if derr != nil {
			f.Close()
			return nil, fmt.Errorf("delta: wal: %s: undecodable record at offset %d: %v", path, off, derr)
		}
		w.ops = append(w.ops, op)
		if op.Seq > w.seq {
			w.seq = op.Seq
		}
		off += 8 + int64(length)
	}
	if w.off == 0 {
		w.off = off
	}
	return w, nil
}

func isZeroOrPrefix(buf []byte) bool {
	for i, b := range buf {
		if b != walMagic[i] && b != 0 {
			return false
		}
	}
	return true
}

func allZero(buf []byte) bool {
	for _, b := range buf {
		if b != 0 {
			return false
		}
	}
	return true
}

// reset rewrites the file to a bare header.
func (w *WAL) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("delta: wal: %w", err)
	}
	if _, err := w.f.WriteAt([]byte(walMagic), 0); err != nil {
		return fmt.Errorf("delta: wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("delta: wal: %w", err)
	}
	w.off = int64(len(walMagic))
	w.ops = nil
	return nil
}

func (w *WAL) truncateTo(off int64) error {
	if err := w.f.Truncate(off); err != nil {
		return fmt.Errorf("delta: wal: truncating torn tail: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("delta: wal: %w", err)
	}
	w.off = off
	return nil
}

// Append assigns the next sequence number, frames the op, writes and
// fsyncs it. On any failure (injected or real) the file is rolled back
// to its pre-append length, so the log never acknowledges an op it
// might not replay and never leaves a frame a later append would bury
// mid-file.
func (w *WAL) Append(kind OpKind, name string, body []byte) (Op, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return Op{}, fmt.Errorf("delta: wal: unusable after failed rollback: %w", w.broken)
	}
	op := Op{Seq: w.seq + 1, Kind: kind, Name: name}
	if kind == OpPut {
		op.Body = body
	}
	payload := encodeOp(op)
	if len(payload) > maxWALRecord {
		return Op{}, fmt.Errorf("delta: wal: append %s %q: payload of %d bytes over the %d limit: %w",
			kind, name, len(payload), maxWALRecord, ErrRecordTooLarge)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[8:], payload)

	// Crash point 1: before the frame reaches the file.
	if err := faultinject.Hit(FPAppend); err != nil {
		return Op{}, fmt.Errorf("delta: wal: append %s %q: %w", kind, name, err)
	}
	if _, err := w.f.WriteAt(frame, w.off); err != nil {
		w.rollback()
		return Op{}, fmt.Errorf("delta: wal: append %s %q: %w", kind, name, err)
	}
	// Crash point 2: frame written, fsync not yet reached. Rolling back
	// leaves the same durable state a real crash would after torn-tail
	// recovery: the op was never acknowledged and is not in the log.
	if err := faultinject.Hit(FPAppend); err != nil {
		w.rollback()
		return Op{}, fmt.Errorf("delta: wal: append %s %q: %w", kind, name, err)
	}
	if err := w.f.Sync(); err != nil {
		w.rollback()
		return Op{}, fmt.Errorf("delta: wal: append %s %q: %w", kind, name, err)
	}
	w.off += int64(len(frame))
	w.seq = op.Seq
	w.ops = append(w.ops, op)
	return op, nil
}

func (w *WAL) rollback() {
	if err := w.f.Truncate(w.off); err != nil {
		w.broken = err
		return
	}
	if err := w.f.Sync(); err != nil {
		w.broken = err
	}
}

// Truncate empties the log back to a bare header — called only after a
// compaction has durably materialized every logged op elsewhere.
// Sequence numbers keep counting from where they were.
func (w *WAL) Truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.reset()
}

// Ops returns a copy of the records currently in the log, in replay
// order.
func (w *WAL) Ops() []Op {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Op(nil), w.ops...)
}

// Count is the number of records pending in the log (the delta-lag
// gauge on /metrics).
func (w *WAL) Count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.ops)
}

// LastSeq is the highest sequence number ever assigned.
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Close closes the underlying file.
func (w *WAL) Close() error { return w.f.Close() }

// syncDir fsyncs a directory so a just-created file's directory entry
// is durable; best-effort (some filesystems refuse).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	defer d.Close()
	d.Sync()
}

package shard

import (
	"strconv"
	"time"

	"repro/internal/obs"
)

// metrics holds the cluster's per-shard instruments, created once at
// Instrument time so the hot path only increments.
type metrics struct {
	searches []*obs.Counter   // by shard
	degraded []*obs.Counter   // by shard: legs that did not answer "ok"
	latency  []*obs.Histogram // by shard
	partial  *obs.Counter
}

// Instrument registers the cluster's instruments with a registry:
// shard_search_total and shard_degraded_total counters and a
// shard_search_seconds latency histogram, each labeled per shard, a
// cluster-level shard_partial_total counter, and per-shard generation
// and document gauges.
func (c *Cluster) Instrument(reg *obs.Registry) {
	m := &metrics{
		partial: reg.Counter("shard_partial_total",
			"Scatter-gather searches answered from a subset of shards."),
	}
	for _, sl := range c.slots {
		label := obs.Label{Key: "shard", Value: strconv.Itoa(sl.id)}
		m.searches = append(m.searches, reg.Counter("shard_search_total",
			"Scatter-gather search legs by shard.", label))
		m.degraded = append(m.degraded, reg.Counter("shard_degraded_total",
			"Search legs a shard failed to answer (error, timeout, or open breaker).", label))
		m.latency = append(m.latency, reg.Histogram("shard_search_seconds",
			"Per-shard search leg latency in seconds.", nil, label))
		sl := sl
		if sl.remote != nil {
			reg.GaugeFunc("shard_generation",
				"Active generation number by shard (advances on each shard swap).",
				func() float64 {
					if sw := sl.peerStats.Load(); sw != nil {
						return float64(sw.Generation)
					}
					return 0
				}, label)
			reg.GaugeFunc("shard_documents",
				"Documents served by shard.",
				func() float64 {
					if sw := sl.peerStats.Load(); sw != nil {
						return float64(sw.Documents)
					}
					return 0
				}, label)
			continue
		}
		reg.GaugeFunc("shard_generation",
			"Active generation number by shard (advances on each shard swap).",
			func() float64 { return float64(sl.gen.Load().num) }, label)
		reg.GaugeFunc("shard_documents",
			"Documents served by shard.",
			func() float64 { return float64(sl.gen.Load().corpus.Len()) }, label)
	}
	c.metrics = m
}

// record accounts one finished scatter leg.
func (m *metrics) record(shard int, state string, elapsed time.Duration) {
	if shard < 0 || shard >= len(m.searches) {
		return
	}
	m.searches[shard].Inc()
	if state != "ok" {
		m.degraded[shard].Inc()
	}
	m.latency[shard].Observe(elapsed.Seconds())
}

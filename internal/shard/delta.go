package shard

import (
	"hash/fnv"

	"repro/internal/dil"
	"repro/internal/ir"
	"repro/internal/ontoscore"
	"repro/internal/query"
	"repro/internal/xmltree"
)

// Live-delta wiring. A cluster overlaid by a delta segment
// (internal/delta) serves single-document ingests without a rebuild:
// every slot's builders read the segment's live collection-statistics
// view and calibrator, every slot's engines merge the segment's
// postings (filtered to the documents that slot owns), and hydration
// of delta documents routes to the owning slot via the segment's own
// owner records instead of the base owners map.

// DeltaOverlay is what the cluster needs from a live delta segment;
// *delta.Segment satisfies it. The base-builder providers the cluster
// hands to Calibrator return the FULL-corpus builder (the server
// generation's): under a disjoint partition the full-corpus live
// maximum equals the maximum over every slot's local maximum, so one
// authority serves both the sharded and the single-node path — and
// keeps them byte-identical.
type DeltaOverlay interface {
	StatsView() ir.StatsView
	Calibrator(st ontoscore.Strategy, base func() *dil.Builder) dil.Calibrator
	Overlay(st ontoscore.Strategy, shard int) query.Overlay
	AuxDoc(id int32) *xmltree.Document
	OwnerOf(docID int32) int
}

// InstallDelta wires a live delta segment into every slot of the
// cluster: live statistics views and calibrators on the builders,
// slot-filtered overlays and auxiliary documents on the systems.
// base returns the full-corpus builder of a strategy (the calibration
// authority). Call before serving traffic; reloads re-wire new
// generations automatically.
func (c *Cluster) InstallDelta(d DeltaOverlay, base func(st ontoscore.Strategy) *dil.Builder) {
	if c.hasPeers() {
		// Live ingest is a single-node/in-process feature: a delta
		// segment cannot overlay a remote peer's indexes. The CLI rejects
		// the combination; this guard keeps a programmatic caller safe.
		c.cfg.Logf("shard: InstallDelta ignored: live delta segments are not supported on a federated cluster")
		return
	}
	c.reloadMu.Lock()
	defer c.reloadMu.Unlock()
	c.delta = d
	c.deltaBase = base
	gens := make([]*shardGen, len(c.slots))
	for i, sl := range c.slots {
		gens[i] = sl.gen.Load()
	}
	c.installDelta(gens)
}

// installDelta applies the delta wiring to a set of generations (new
// builds during a reload, or the live set at install time). The
// generations must not be serving yet — the same off-line rule as
// exchangeStats.
func (c *Cluster) installDelta(gens []*shardGen) {
	if c.delta == nil {
		return
	}
	for _, g := range gens {
		for st, sys := range g.systems {
			st := st
			b := sys.Builder()
			b.SetGlobalTextStatsView(c.delta.StatsView())
			b.SetCalibrator(c.delta.Calibrator(st, func() *dil.Builder { return c.deltaBase(st) }))
			sys.SetOverlay(c.delta.Overlay(st, g.shard))
			sys.SetAuxDocs(c.delta)
		}
	}
}

// OwnerOfName reports the slot that owns a document name under the
// cluster's stable hash partition — the delta segment uses it to
// assign live documents to the shard that would own them after a
// compaction folds them into the base.
func (c *Cluster) OwnerOfName(name string) int {
	return shardOfName(name, len(c.slots))
}

// shardOfName is the stable FNV-1a name hash behind shardOf.
func shardOfName(name string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	return int(h.Sum32() % uint32(n))
}

// PurgeKeywordCaches drops every live slot system's on-demand keyword
// cache (the serving layer calls it after each applied ingest — stale
// entries are already unreachable via version-tagged keys; this frees
// the memory).
func (c *Cluster) PurgeKeywordCaches() {
	for _, sl := range c.slots {
		if sl.remote != nil {
			continue
		}
		g := sl.pin()
		for _, sys := range g.systems {
			sys.PurgeKeywordCache()
		}
		g.release()
	}
}

package shard

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ontoscore"
	"repro/internal/query"
)

// The acceptance bar for sharded serving: for every shard count the
// scatter-gather answer is byte-identical to the single-node system —
// same roots, same scores (exact float equality, which only holds
// because global statistics and normalization maxima are exchanged
// across shards), same supporting matches. Covers the DIL and RDIL
// paths, every strategy, and snippet hydration.
func TestShardedEquivalence(t *testing.T) {
	corpus, coll := testCorpus(t, 12, 9)
	singles := make(map[ontoscore.Strategy]*core.System)
	for _, st := range ontoscore.Strategies() {
		cfg := core.DefaultConfig()
		cfg.Strategy = st
		singles[st] = core.NewMulti(corpus, coll, cfg)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		cluster := testCluster(t, corpus, coll, Config{Shards: shards})
		for _, st := range ontoscore.Strategies() {
			for _, q := range testQueries {
				for _, ranked := range []bool{false, true} {
					name := fmt.Sprintf("shards=%d/%s/%q/ranked=%v", shards, st, q, ranked)
					req := core.SearchRequest{Query: q, K: 10, Ranked: ranked, Explain: true}
					want, err := singles[st].Query(context.Background(), req)
					if err != nil {
						t.Fatalf("%s: single-node: %v", name, err)
					}
					got, err := cluster.System(st).Query(context.Background(), req)
					if err != nil {
						t.Fatalf("%s: sharded: %v", name, err)
					}
					if got.Partial {
						t.Errorf("%s: healthy cluster answered partial", name)
					}
					if len(got.Shards) != shards {
						t.Errorf("%s: %d shard statuses, want %d", name, len(got.Shards), shards)
					}
					assertSameResults(t, name, want, got)
				}
			}
		}
	}
}

func assertSameResults(t *testing.T, name string, want, got *core.SearchResponse) {
	t.Helper()
	if len(got.Results) != len(want.Results) {
		t.Errorf("%s: %d results, want %d", name, len(got.Results), len(want.Results))
		return
	}
	for i := range want.Results {
		w, g := want.Results[i], got.Results[i]
		if g.Root.Compare(w.Root) != 0 {
			t.Errorf("%s: result %d root %s, want %s", name, i, g.Root, w.Root)
		}
		if g.Score != w.Score {
			t.Errorf("%s: result %d score %.17g, want %.17g", name, i, g.Score, w.Score)
		}
		if g.Document != w.Document || g.Path != w.Path {
			t.Errorf("%s: result %d hydration (%s,%s), want (%s,%s)",
				name, i, g.Document, g.Path, w.Document, w.Path)
		}
		if len(g.Matches) != len(w.Matches) {
			t.Errorf("%s: result %d has %d matches, want %d", name, i, len(g.Matches), len(w.Matches))
			continue
		}
		for j := range w.Matches {
			wm, gm := w.Matches[j], g.Matches[j]
			if gm.Keyword != wm.Keyword || gm.ID.Compare(wm.ID) != 0 || gm.Score != wm.Score {
				t.Errorf("%s: result %d match %d = {%s %s %.17g}, want {%s %s %.17g}",
					name, i, j, gm.Keyword, gm.ID, gm.Score, wm.Keyword, wm.ID, wm.Score)
			}
		}
	}
	if len(got.Snippets) != len(want.Snippets) {
		t.Errorf("%s: %d snippets, want %d", name, len(got.Snippets), len(want.Snippets))
		return
	}
	for i := range want.Snippets {
		if got.Snippets[i] != want.Snippets[i] {
			t.Errorf("%s: snippet %d = %q, want %q", name, i, got.Snippets[i], want.Snippets[i])
		}
	}
}

// Offset paging is exact under scatter-gather: for every shard count,
// page [offset, offset+k) of the cluster answer equals the same window
// of the single-node ranked list — the coordinator widens each leg to
// k+offset and pages once after the merge, so no shard's local paging
// can hide a globally top-ranked result.
func TestShardedPagingEquivalence(t *testing.T) {
	corpus, coll := testCorpus(t, 12, 9)
	single := core.NewMulti(corpus, coll, core.DefaultConfig())
	st := ontoscore.StrategyRelationships
	const q = "asthma medications"
	full, err := single.Query(context.Background(), core.SearchRequest{Query: q, K: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Results) < 4 {
		t.Skipf("only %d results; cannot page", len(full.Results))
	}
	for _, shards := range []int{1, 2, 4} {
		cluster := testCluster(t, corpus, coll, Config{Shards: shards})
		for _, page := range []struct{ k, offset int }{
			{1, 0}, {2, 1}, {3, 2}, {2, len(full.Results) - 1}, {5, len(full.Results) + 3},
		} {
			name := fmt.Sprintf("shards=%d/k=%d/offset=%d", shards, page.k, page.offset)
			got, err := cluster.System(st).Query(context.Background(),
				core.SearchRequest{Query: q, K: page.k, Offset: page.offset})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			lo := page.offset
			if lo > len(full.Results) {
				lo = len(full.Results)
			}
			hi := page.offset + page.k
			if hi > len(full.Results) {
				hi = len(full.Results)
			}
			want := &core.SearchResponse{Results: full.Results[lo:hi]}
			assertSameResults(t, name, want, got)
		}
	}
}

// Pre-parsed keyword requests and the default-k path go through the
// same merge.
func TestShardedQueryDefaults(t *testing.T) {
	corpus, coll := testCorpus(t, 8, 3)
	cluster := testCluster(t, corpus, coll, Config{Shards: 3})
	single := core.NewMulti(corpus, coll, core.DefaultConfig())
	st := ontoscore.StrategyRelationships
	kws := query.ParseQuery("asthma medications")
	want, err := single.Query(context.Background(), core.SearchRequest{Keywords: kws})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cluster.System(st).Query(context.Background(), core.SearchRequest{Keywords: kws})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Results) > query.DefaultParams().K {
		t.Fatalf("single-node ignored default k: %d results", len(want.Results))
	}
	assertSameResults(t, "defaults", want, got)
}

// A strategy mismatch is an error, not a silent wrong answer — same
// contract as the single-node system.
func TestShardedStrategyMismatch(t *testing.T) {
	corpus, coll := testCorpus(t, 4, 5)
	cluster := testCluster(t, corpus, coll, Config{Shards: 2})
	_, err := cluster.System(ontoscore.StrategyRelationships).Query(context.Background(),
		core.SearchRequest{Query: "asthma", Strategy: "XRANK"})
	if err == nil {
		t.Fatal("mismatched strategy did not error")
	}
}

// Snippet and Fragment route to the shard owning the result's
// document and answer identically to the single-node system.
func TestShardedHydrationRouting(t *testing.T) {
	corpus, coll := testCorpus(t, 8, 7)
	cluster := testCluster(t, corpus, coll, Config{Shards: 4})
	single := core.NewMulti(corpus, coll, core.DefaultConfig())
	st := ontoscore.StrategyRelationships
	resp, err := cluster.System(st).Query(context.Background(), core.SearchRequest{Query: "asthma", K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 {
		t.Fatal("no results to hydrate")
	}
	for _, r := range resp.Results {
		if got, want := cluster.System(st).Snippet(r), single.Snippet(r); got != want {
			t.Errorf("snippet(%s) = %q, want %q", r.Root, got, want)
		}
		if got, want := cluster.System(st).Fragment(r), single.Fragment(r); got != want {
			t.Errorf("fragment(%s) = %q, want %q", r.Root, got, want)
		}
	}
}

package shard

import (
	"testing"

	"repro/internal/cda"
	"repro/internal/core"
	"repro/internal/ontology"
	"repro/internal/xmltree"
)

// testCorpus builds a corpus large enough that every shard of an
// 8-way partition holds documents: the Figure 1 record plus generated
// CDA documents with stable names (the shard hash keys on names).
func testCorpus(t *testing.T, docs int, seed int64) (*xmltree.Corpus, *ontology.Collection) {
	t.Helper()
	ont, err := ontology.Generate(ontology.GenConfig{Seed: seed, ExtraConcepts: 80, SynonymProb: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	corpus := xmltree.NewCorpus()
	fig1, err := cda.GenerateFigure1(ont)
	if err != nil {
		t.Fatal(err)
	}
	corpus.Add(fig1)
	g, err := cda.NewGenerator(cda.GenConfig{
		Seed: seed, NumDocuments: docs, ProblemsPerPatient: 3,
		MedicationsPerPatient: 3, ProceduresPerPatient: 2,
	}, ont)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range g.GenerateCorpus().Docs() {
		corpus.Add(&xmltree.Document{Root: d.Root, Name: d.Name})
	}
	return corpus, ontology.MustCollection(ont, ontology.LOINCFragment())
}

// testQueries covers single keywords, multi-keyword conjunctions,
// phrases, ontology-heavy terms, and a miss.
var testQueries = []string{
	"asthma",
	"asthma medications",
	`"bronchial structure" theophylline`,
	"cardiac arrest",
	"patient problems procedure",
	"zzznothing",
}

func testCluster(t *testing.T, corpus *xmltree.Corpus, coll *ontology.Collection, cfg Config) *Cluster {
	t.Helper()
	cfg.Core = core.DefaultConfig()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	return New(corpus, coll, cfg)
}

package shard

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/ontoscore"
	"repro/internal/resilience"
)

// countStates tallies shard statuses by state.
func countStates(shards []core.ShardStatus) map[string]int {
	out := make(map[string]int)
	for _, s := range shards {
		out[s.State]++
	}
	return out
}

// A shard that fails mid-query degrades the answer to a partial one —
// HTTP-level 200 semantics — instead of failing the whole search, and
// the surviving results are a verbatim subset of the full answer.
func TestFailedShardPartial(t *testing.T) {
	corpus, coll := testCorpus(t, 10, 11)
	cluster := testCluster(t, corpus, coll, Config{Shards: 2})
	st := ontoscore.StrategyRelationships
	req := core.SearchRequest{Query: "asthma medications", K: 10}
	// The unbounded answer: a partial top-k backfills lower-ranked
	// results from the answering shard, so the subset property holds
	// against the full result list, not the global top-k.
	full, err := cluster.System(st).Query(context.Background(),
		core.SearchRequest{Query: req.Query, K: 1000})
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Enable(FPSearch, faultinject.Spec{Mode: faultinject.ModeError, Count: 1})
	defer faultinject.DisableAll()
	resp, err := cluster.System(st).Query(context.Background(), req)
	if err != nil {
		t.Fatalf("partial answer became an error: %v", err)
	}
	if !resp.Partial {
		t.Fatal("response with a failed shard not marked partial")
	}
	states := countStates(resp.Shards)
	if states["ok"] != 1 || states["error"] != 1 {
		t.Fatalf("shard states = %v, want one ok and one error", states)
	}
	assertSubsetOf(t, resp.Results, full.Results)
}

// A slow shard (injected synchronous latency, deliberately immune to
// context cancellation) is reported as a timeout within the gather
// budget; the coordinator never blocks on it.
func TestSlowShardPartial(t *testing.T) {
	corpus, coll := testCorpus(t, 10, 11)
	cluster := testCluster(t, corpus, coll, Config{Shards: 2, Timeout: 30 * time.Millisecond})
	st := ontoscore.StrategyRelationships
	req := core.SearchRequest{Query: "asthma", K: 10}
	full, err := cluster.System(st).Query(context.Background(),
		core.SearchRequest{Query: req.Query, K: 1000})
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Enable(FPSearch, faultinject.Spec{
		Mode: faultinject.ModeLatency, Delay: 300 * time.Millisecond, Count: 1,
	})
	defer faultinject.DisableAll()
	start := time.Now()
	resp, err := cluster.System(st).Query(context.Background(), req)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("partial answer became an error: %v", err)
	}
	if elapsed >= 300*time.Millisecond {
		t.Errorf("coordinator waited %v for the slow shard; budget was 30ms + grace", elapsed)
	}
	if !resp.Partial {
		t.Fatal("response with a slow shard not marked partial")
	}
	states := countStates(resp.Shards)
	if states["ok"] != 1 || states["timeout"] != 1 {
		t.Fatalf("shard states = %v, want one ok and one timeout", states)
	}
	assertSubsetOf(t, resp.Results, full.Results)
	// The straggler leg finishes in the background; wait for it so the
	// failpoint accounting (and the leak check) is quiet.
	time.Sleep(350 * time.Millisecond)
}

// Repeated failures trip the shard's breaker; subsequent queries skip
// the shard without executing it ("open" state), readiness drops below
// quorum, and recovery closes the breaker again.
func TestShardBreakerOpensAndRecovers(t *testing.T) {
	corpus, coll := testCorpus(t, 10, 11)
	cluster := testCluster(t, corpus, coll, Config{
		Shards:  2,
		Breaker: resilience.BreakerConfig{Threshold: 1, Cooldown: 50 * time.Millisecond},
	})
	st := ontoscore.StrategyRelationships
	req := core.SearchRequest{Query: "asthma", K: 10}

	faultinject.Enable(FPSearch, faultinject.Spec{Mode: faultinject.ModeError, Count: 1})
	resp, err := cluster.System(st).Query(context.Background(), req)
	faultinject.DisableAll()
	if err != nil || !resp.Partial {
		t.Fatalf("tripping query: err=%v partial=%v", err, resp != nil && resp.Partial)
	}

	// The breaker is now open on the failed shard: the next query is
	// partial with an "open" status and no execution on that shard.
	resp, err = cluster.System(st).Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	states := countStates(resp.Shards)
	if !resp.Partial || states["open"] != 1 {
		t.Fatalf("breaker-open query: partial=%v states=%v, want one open", resp.Partial, states)
	}
	if ready, quorum, ok := cluster.Ready(); ok || ready != 1 || quorum != 2 {
		t.Fatalf("Ready() = (%d, %d, %v), want (1, 2, false)", ready, quorum, ok)
	}
	unready := 0
	for _, ss := range cluster.Statuses() {
		if !ss.Ready {
			unready++
			if ss.Breaker.State != resilience.Open.String() {
				t.Errorf("unready shard %d breaker state %q", ss.Shard, ss.Breaker.State)
			}
		}
	}
	if unready != 1 {
		t.Fatalf("%d unready shards, want 1", unready)
	}

	// After the cooldown the half-open probe succeeds and the cluster
	// heals: full answers and quorum readiness return.
	time.Sleep(60 * time.Millisecond)
	resp, err = cluster.System(st).Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Partial {
		t.Fatalf("recovered cluster still partial: %v", countStates(resp.Shards))
	}
	if _, _, ok := cluster.Ready(); !ok {
		t.Fatal("recovered cluster below quorum")
	}
}

// When no shard answers, the query is an error (there is nothing
// honest to return), naming the first failure.
func TestAllShardsFailed(t *testing.T) {
	corpus, coll := testCorpus(t, 6, 11)
	cluster := testCluster(t, corpus, coll, Config{Shards: 2})
	faultinject.Enable(FPSearch, faultinject.Spec{Mode: faultinject.ModeError})
	defer faultinject.DisableAll()
	_, err := cluster.System(ontoscore.StrategyRelationships).Query(context.Background(),
		core.SearchRequest{Query: "asthma", K: 5})
	if err == nil {
		t.Fatal("all-shards-failed query did not error")
	}
	if !strings.Contains(err.Error(), "no shards answered") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// A canceled caller context wins over partial-answer assembly.
func TestCallerContextCanceled(t *testing.T) {
	corpus, coll := testCorpus(t, 6, 11)
	cluster := testCluster(t, corpus, coll, Config{Shards: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := cluster.System(ontoscore.StrategyRelationships).Query(ctx,
		core.SearchRequest{Query: "asthma", K: 5})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Per-shard instruments: every leg is counted under its shard label,
// non-ok legs land in shard_degraded_total, and a partial gather bumps
// shard_partial_total.
func TestShardMetrics(t *testing.T) {
	corpus, coll := testCorpus(t, 10, 11)
	cluster := testCluster(t, corpus, coll, Config{Shards: 2})
	reg := obs.NewRegistry()
	cluster.Instrument(reg)
	st := ontoscore.StrategyRelationships
	req := core.SearchRequest{Query: "asthma", K: 5}
	if _, err := cluster.System(st).Query(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(FPSearch, faultinject.Spec{Mode: faultinject.ModeError, Count: 1})
	defer faultinject.DisableAll()
	if _, err := cluster.System(st).Query(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	reg.WritePrometheus(&buf)
	text := buf.String()
	for _, want := range []string{
		`shard_search_total{shard="0"} 2`,
		`shard_search_total{shard="1"} 2`,
		`shard_partial_total 1`,
		`shard_search_seconds_count{shard="0"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	degradedTotal := 0
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "shard_degraded_total{") && strings.HasSuffix(line, " 1") {
			degradedTotal++
		}
	}
	if degradedTotal != 1 {
		t.Errorf("%d shards report one degraded leg, want exactly 1\n%s", degradedTotal, text)
	}
}

// assertSubsetOf checks that every partial result appears, identical,
// in the full answer — shards are disjoint, so a missing shard removes
// results but never changes the surviving ones.
func assertSubsetOf(t *testing.T, partial, full []core.Result) {
	t.Helper()
	if len(partial) == 0 {
		t.Fatal("partial answer is empty; fixture should place results on both shards")
	}
	byRoot := make(map[string]core.Result, len(full))
	for _, r := range full {
		byRoot[r.Root.String()] = r
	}
	for _, p := range partial {
		f, ok := byRoot[p.Root.String()]
		if !ok {
			t.Errorf("partial result %s not in the full answer", p.Root)
			continue
		}
		if p.Score != f.Score {
			t.Errorf("partial result %s score %.17g, want %.17g", p.Root, p.Score, f.Score)
		}
	}
}

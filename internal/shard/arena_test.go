package shard

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/ontoscore"
	"repro/internal/peer"
)

// TestShardedArenaDifferential: for 1-, 2-, and 4-way clusters the
// memory-mapped answer is byte-identical to both the heap cluster and
// the single-node system, across every strategy and the DIL and RDIL
// paths — and a second cluster cold-attaches the files the first one
// wrote, without rebuilding.
func TestShardedArenaDifferential(t *testing.T) {
	corpus, coll := testCorpus(t, 12, 9)
	singles := make(map[ontoscore.Strategy]*core.System)
	for _, st := range ontoscore.Strategies() {
		cfg := core.DefaultConfig()
		cfg.Strategy = st
		singles[st] = core.NewMulti(corpus, coll, cfg)
	}
	for _, shards := range []int{1, 2, 4} {
		dir := t.TempDir()
		plain := testCluster(t, corpus, coll, Config{Shards: shards})
		mapped := testCluster(t, corpus, coll, Config{Shards: shards, ArenaDir: dir, ArenaRebuild: true})
		if mapped.MappedArenaBytes() == 0 {
			t.Fatalf("shards=%d: nothing mapped after rebuild", shards)
		}
		// Cold attach: rebuild off, so only the files written above can
		// serve — mapping anything proves they were attached.
		cold := testCluster(t, corpus, coll, Config{Shards: shards, ArenaDir: dir})
		if cold.MappedArenaBytes() == 0 {
			t.Fatalf("shards=%d: cold attach mapped nothing", shards)
		}
		for _, st := range ontoscore.Strategies() {
			for _, q := range testQueries {
				for _, ranked := range []bool{false, true} {
					name := fmt.Sprintf("shards=%d/%s/%q/ranked=%v", shards, st, q, ranked)
					req := core.SearchRequest{Query: q, K: 10, Ranked: ranked, Explain: true}
					want, err := singles[st].Query(context.Background(), req)
					if err != nil {
						t.Fatalf("%s: single-node: %v", name, err)
					}
					for label, c := range map[string]*Cluster{"heap": plain, "mapped": mapped, "cold": cold} {
						got, err := c.System(st).Query(context.Background(), req)
						if err != nil {
							t.Fatalf("%s: %s cluster: %v", name, label, err)
						}
						assertSameResults(t, name+"/"+label, want, got)
					}
				}
			}
		}
	}
}

// TestShardedArenaReload: a rolling reload writes fresh per-shard
// arenas for the new corpus before any shard serves it, old
// generations keep their mappings exactly as long as a pinned leg, and
// the reloaded cluster still matches single-node ranking.
func TestShardedArenaReload(t *testing.T) {
	corpus, coll := testCorpus(t, 10, 9)
	dir := t.TempDir()
	c := testCluster(t, corpus, coll, Config{Shards: 2, ArenaDir: dir, ArenaRebuild: true})

	// Pin shard 0's generation, as an in-flight scatter-gather leg would.
	g := c.slots[0].pin()
	oldArenas := g.arenas
	if len(oldArenas) == 0 {
		t.Fatal("no arenas on the live shard generation")
	}

	corpus2, coll2 := testCorpus(t, 14, 10)
	for _, res := range c.Reload(context.Background(), corpus2, coll2) {
		if res.Error != "" {
			t.Fatalf("shard %d reload: %s", res.Shard, res.Error)
		}
	}
	if c.MappedArenaBytes() == 0 {
		t.Fatal("nothing mapped after reload")
	}
	for _, a := range oldArenas {
		if !a.Mapped() {
			t.Fatalf("old arena %s unmapped while its generation is pinned", a.Path())
		}
	}
	g.release()
	for _, a := range oldArenas {
		if a.Mapped() {
			t.Fatalf("old arena %s still mapped after drain", a.Path())
		}
	}

	cfg := core.DefaultConfig()
	cfg.Strategy = ontoscore.StrategyRelationships
	single := core.NewMulti(corpus2, coll2, cfg)
	for _, q := range testQueries {
		req := core.SearchRequest{Query: q, K: 10}
		want, err := single.Query(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.System(ontoscore.StrategyRelationships).Query(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, q, want, got)
	}
}

// TestShardedArenaStaleRefused: files written for one corpus must not
// attach to a cluster over a different one (without rebuild the shard
// serves from heap; with it the files are rewritten).
func TestShardedArenaStaleRefused(t *testing.T) {
	corpus, coll := testCorpus(t, 10, 9)
	dir := t.TempDir()
	if c := testCluster(t, corpus, coll, Config{Shards: 2, ArenaDir: dir, ArenaRebuild: true}); c.MappedArenaBytes() == 0 {
		t.Fatal("seed cluster mapped nothing")
	}
	other, otherColl := testCorpus(t, 11, 10)
	stale := testCluster(t, other, otherColl, Config{Shards: 2, ArenaDir: dir})
	if n := stale.MappedArenaBytes(); n != 0 {
		t.Fatalf("stale arenas attached to a different corpus (%d bytes mapped)", n)
	}
	// Search still answers from heap.
	resp, err := stale.System(ontoscore.StrategyRelationships).Query(context.Background(),
		core.SearchRequest{Query: "asthma", K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 {
		t.Fatal("heap fallback returned nothing")
	}
}

// TestFederatedArenaRefused: ArenaDir is ignored on a federated
// coordinator — remote statistics can't be fingerprint-pinned — and no
// files are written.
func TestFederatedArenaRefused(t *testing.T) {
	corpus, coll := testCorpus(t, 12, 9)
	dir := t.TempDir()
	fed, _ := newFederation(t, corpus, coll, 1, peer.Options{},
		Config{ArenaDir: dir, ArenaRebuild: true})
	if n := fed.MappedArenaBytes(); n != 0 {
		t.Fatalf("federated coordinator mapped %d bytes", n)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Fatalf("federated coordinator wrote %s", filepath.Join(dir, e.Name()))
	}
}

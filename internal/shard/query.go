package shard

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dil"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/ontoscore"
	"repro/internal/query"
	"repro/internal/serving"
)

// FPSearch fires once per shard leg at the top of every scatter; tests
// arm it (with After/Count/Prob) to make individual shards slow, fail,
// or panic.
const FPSearch = "shard.search"

// gatherGrace is how much longer than the per-shard budget the
// coordinator waits before declaring unanswered shards timed out. The
// per-shard context expires first; the grace only covers legs stuck in
// paths that cannot observe cancellation (e.g. an injected synchronous
// sleep), so the coordinator never blocks on them.
const gatherGrace = 50 * time.Millisecond

// Sharded is the scatter-gather facade for one strategy. It implements
// the same Query(ctx, SearchRequest) surface as *core.System, so the
// serving and server layers run unchanged on top of a cluster.
type Sharded struct {
	c  *Cluster
	st ontoscore.Strategy
}

// Strategy returns the facade's strategy.
func (s *Sharded) Strategy() ontoscore.Strategy { return s.st }

// answer is one shard leg's contribution to a gather.
type answer struct {
	id   int
	stat core.ShardStatus
	resp *core.SearchResponse
}

// Query fans the request out to every shard in parallel, waits up to
// the per-shard budget (plus a small grace), and merges the per-shard
// top-k into the global top-k with the loser-tree merge. Shards that
// are slow, failing, or breaker-open are skipped: the response carries
// the shards that answered, Partial set, and a per-shard status block.
// Only when no shard answers (or the caller's context dies) does Query
// return an error.
func (s *Sharded) Query(ctx context.Context, req core.SearchRequest) (*core.SearchResponse, error) {
	start := time.Now()
	if req.Strategy != "" {
		want, err := ontoscore.ParseStrategy(req.Strategy)
		if err != nil {
			return nil, err
		}
		if want != s.st {
			return nil, fmt.Errorf("shard: cluster system is built for strategy %s, request asked for %s",
				s.st, want)
		}
	}

	var localRoot *obs.Span
	if req.Trace && obs.SpanFromContext(ctx) == nil {
		ctx, localRoot = obs.NewTracer(1).StartRoot(ctx, "shard.query")
	}

	// Parse once in the coordinator so every shard sees the same
	// keywords and the parse is not repeated N times.
	keywords := req.Keywords
	var parseDur time.Duration
	if len(keywords) == 0 && req.Query != "" {
		pstart := time.Now()
		keywords = query.ParseQuery(req.Query)
		parseDur = time.Since(pstart)
	}
	k := query.ClampK(req.K, s.c.cfg.Core.Query.K)
	offset := query.ClampOffset(req.Offset)
	// Every leg answers its local top-(k+offset) with Offset 0: shards
	// are disjoint document partitions, so the first k+offset entries of
	// the merged stream are exactly the global window, and the
	// coordinator pages once, here, after the merge.
	leg := core.SearchRequest{
		Keywords: keywords,
		K:        k + offset,
		Ranked:   req.Ranked,
		Explain:  req.Explain,
	}

	// With peers in the cluster, resolve every keyword's federation-wide
	// norm up front: local legs then hit the calibrator cache instead of
	// blocking a keyword build on the network, and remote legs ship the
	// resolved values so every node divides by the same maxima.
	var norms map[string]float64
	if s.c.hasPeers() {
		norms = s.c.calibs[s.st].resolveAll(ctx, keywords)
	}

	sstart := time.Now()
	n := len(s.c.slots)
	ch := make(chan answer, n) // buffered: stragglers must never leak
	for _, sl := range s.c.slots {
		if sl.remote != nil {
			go s.queryRemote(ctx, sl, leg, norms, ch)
			continue
		}
		go s.queryShard(ctx, sl, leg, ch)
	}

	statuses := make([]*core.ShardStatus, n)
	answers := make([]*core.SearchResponse, n)
	timer := time.NewTimer(s.c.cfg.Timeout + gatherGrace)
	defer timer.Stop()
	pending := n
gather:
	for pending > 0 {
		select {
		case a := <-ch:
			stat := a.stat
			statuses[a.id] = &stat
			answers[a.id] = a.resp
			pending--
		case <-timer.C:
			break gather
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	searchDur := time.Since(sstart)

	out := &core.SearchResponse{}
	answered := 0
	var firstErr string
	snippets := map[string]string{}
	var lists [][]core.Result
	var hydrateUS int64
	for i := range s.c.slots {
		if statuses[i] == nil {
			statuses[i] = &core.ShardStatus{
				Shard:     i,
				State:     "timeout",
				Error:     "shard did not answer within the gather budget",
				ElapsedUS: searchDur.Microseconds(),
			}
		}
		st := statuses[i]
		out.Shards = append(out.Shards, *st)
		if st.State != "ok" {
			if firstErr == "" {
				firstErr = fmt.Sprintf("shard %d: %s (%s)", i, st.State, st.Error)
			}
			continue
		}
		answered++
		resp := answers[i]
		out.Pruning.Merge(resp.Pruning)
		out.Info.Degraded = out.Info.Degraded || resp.Info.Degraded
		out.Info.DegradedKeywords = mergeKeywords(out.Info.DegradedKeywords, resp.Info.DegradedKeywords)
		if len(resp.Results) > 0 {
			lists = append(lists, resp.Results)
		}
		if req.Explain {
			for j, r := range resp.Results {
				if j < len(resp.Snippets) {
					snippets[r.Root.String()] = resp.Snippets[j]
				}
			}
		}
		if resp.Timing.HydrateUS > hydrateUS {
			hydrateUS = resp.Timing.HydrateUS
		}
	}
	if answered == 0 {
		localRoot.End()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("shard: no shards answered: %s", firstErr)
	}
	out.Partial = answered < n
	if out.Partial && s.c.metrics != nil {
		s.c.metrics.partial.Inc()
	}

	// Shards are disjoint document partitions and each returned its
	// full top-(k+offset) under the engine's total order, so the merged
	// prefix is exactly the single-node window; paging happens here,
	// once, and nowhere downstream.
	merged := query.MergeSortedFunc(lists, func(a, b core.Result) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.Root.Compare(b.Root) < 0
	}, k+offset)
	if offset >= len(merged) {
		merged = nil
	} else {
		merged = merged[offset:]
	}
	out.Results = merged
	if req.Explain {
		out.Snippets = make([]string, len(out.Results))
		for i, r := range out.Results {
			out.Snippets[i] = snippets[r.Root.String()]
		}
	}

	out.TraceID = obs.TraceID(ctx)
	if req.Trace {
		root := obs.SpanFromContext(ctx).Root()
		if localRoot != nil {
			localRoot.End()
			root = localRoot
		}
		if root != nil {
			t := root.Tree()
			out.Trace = &t
		}
	}
	total := time.Since(start).Microseconds()
	if total < 1 {
		total = 1
	}
	out.Timing = core.Timing{
		ParseUS:   parseDur.Microseconds(),
		SearchUS:  searchDur.Microseconds(),
		HydrateUS: hydrateUS,
		TotalUS:   total,
	}
	return out, nil
}

// queryShard runs one scatter leg: breaker admission, generation pin,
// per-shard deadline, the failpoint, and the shard-local query, always
// answering on ch (buffered) so a straggler never blocks anyone.
func (s *Sharded) queryShard(ctx context.Context, sl *slot, req core.SearchRequest, ch chan<- answer) {
	start := time.Now()
	stat := core.ShardStatus{Shard: sl.id}
	defer func() {
		if s.c.metrics != nil {
			s.c.metrics.record(sl.id, stat.State, time.Since(start))
		}
	}()
	if !sl.breaker.Allow() {
		stat.State = "open"
		stat.Error = "shard circuit breaker open"
		ch <- answer{id: sl.id, stat: stat}
		return
	}
	g := sl.pin()
	defer g.release()
	stat.Generation = g.num
	sctx, cancel := context.WithTimeout(ctx, s.c.cfg.Timeout)
	defer cancel()
	sctx, sp := obs.StartSpan(sctx, "shard.search")
	sp.SetAttr("shard", sl.id)
	defer sp.End()

	var resp *core.SearchResponse
	err := faultinject.Hit(FPSearch)
	if err == nil {
		resp, err = g.systems[s.st].Query(sctx, req)
	}
	// An injected synchronous sleep returns nil after the budget has
	// long expired; surface it as the timeout it effectively was.
	if err == nil && sctx.Err() != nil {
		err = sctx.Err()
	}
	stat.ElapsedUS = time.Since(start).Microseconds()
	if err != nil {
		sl.breaker.Failure()
		stat.State = "error"
		if errors.Is(err, context.DeadlineExceeded) {
			stat.State = "timeout"
		}
		stat.Error = err.Error()
		sp.SetAttr("error", err.Error())
		ch <- answer{id: sl.id, stat: stat}
		return
	}
	sl.breaker.Success()
	stat.State = "ok"
	stat.Results = len(resp.Results)
	sp.SetAttr("results", len(resp.Results))
	ch <- answer{id: sl.id, stat: stat, resp: resp}
}

// mergeKeywords unions degraded-keyword lists preserving first-seen
// order.
func mergeKeywords(acc, more []string) []string {
	for _, kw := range more {
		seen := false
		for _, have := range acc {
			if have == kw {
				seen = true
				break
			}
		}
		if !seen {
			acc = append(acc, kw)
		}
	}
	return acc
}

// Snippet routes to the shard — or peer — owning the result's
// document.
func (s *Sharded) Snippet(r core.Result) string {
	sl := s.slotFor(r.Root.DocID())
	if sl == nil {
		return ""
	}
	if sl.remote != nil {
		return s.remoteHydrate(sl, r, true, false).Snippet
	}
	g := sl.pin()
	defer g.release()
	return g.systems[s.st].Snippet(r)
}

// Fragment routes to the shard — or peer — owning the result's
// document.
func (s *Sharded) Fragment(r core.Result) string {
	sl := s.slotFor(r.Root.DocID())
	if sl == nil {
		return ""
	}
	if sl.remote != nil {
		return s.remoteHydrate(sl, r, false, true).Fragment
	}
	g := sl.pin()
	defer g.release()
	return g.systems[s.st].Fragment(r)
}

func (s *Sharded) slotFor(docID int32) *slot {
	if i := s.c.ownerOf(docID); i >= 0 {
		return s.c.slots[i]
	}
	// Documents a peer answered with route back to that peer.
	if i := s.c.remoteOwnerOf(docID); i >= 0 && i < len(s.c.slots) {
		return s.c.slots[i]
	}
	// Delta documents are in no base partition; the segment records the
	// slot that owns them.
	if d := s.c.delta; d != nil {
		if i := d.OwnerOf(docID); i >= 0 && i < len(s.c.slots) {
			return s.c.slots[i]
		}
	}
	// Transient miss across a partial reload: fall back to scanning the
	// live local generations.
	for _, sl := range s.c.slots {
		if sl.remote != nil {
			continue
		}
		g := sl.pin()
		ok := g.corpus.Doc(docID) != nil
		g.release()
		if ok {
			return sl
		}
	}
	return nil
}

// Builder exposes a representative index-creation module (shard 0's):
// ontology-side computations (OntoScore explanations) are
// corpus-independent, so any shard's builder answers them identically.
func (s *Sharded) Builder() *dil.Builder {
	g := s.c.slots[0].pin()
	defer g.release()
	return g.systems[s.st].Builder()
}

// KeywordCacheMetrics aggregates the per-shard on-demand keyword cache
// counters of the local shards (peers report their own).
func (s *Sharded) KeywordCacheMetrics() serving.CacheMetrics {
	var out serving.CacheMetrics
	for _, sl := range s.c.slots {
		if sl.remote != nil {
			continue
		}
		g := sl.pin()
		m := g.systems[s.st].KeywordCacheMetrics()
		g.release()
		out.Hits += m.Hits
		out.Misses += m.Misses
		out.Evictions += m.Evictions
		out.Expired += m.Expired
		out.Entries += m.Entries
		out.Capacity += m.Capacity
	}
	return out
}

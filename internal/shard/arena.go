package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/ontoscore"
)

// Memory-mapped shard serving. With Config.ArenaDir set, every local
// shard generation serves its postings from single-file arenas under
// <ArenaDir>/shard-<i>-of-<n>/<Strategy>.xarn — the partition layout
// (document-name hash) is stable across restarts, so a shard reopens
// exactly the files it wrote. Each arena's GlobalFP records the
// fingerprint of the FULL corpus the cluster was built over: per-shard
// scores embed collection-global BM25 statistics and cross-shard
// normalization maxima, so a shard arena is only valid against the
// same cluster-wide corpus, not merely the same partition view.

// arenaShardDir is the per-slot arena directory; encoding the shard
// count in the name means a resharded cluster (different n) never
// attaches another layout's files even before the fingerprint check.
func arenaShardDir(dir string, shard, n int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d", shard, n))
}

// genCalibrator resolves keyword normalization maxima over one
// incoming generation set instead of the cluster's live slots. An
// arena rebuild during a rolling reload runs BEFORE the generation
// swap: the cluster calibrator would still answer from the outgoing
// generations, silently baking stale divisors into the stored scores.
// Resolving over the incoming generations gives the values the cluster
// calibrator will produce once every shard has swapped — the stored
// scores match post-reload single-node ranking exactly.
type genCalibrator struct {
	gens []*shardGen
	st   ontoscore.Strategy

	mu    sync.Mutex
	cache map[string]float64
}

func (cal *genCalibrator) KeywordNorm(keyword string) float64 {
	cal.mu.Lock()
	defer cal.mu.Unlock()
	if v, ok := cal.cache[keyword]; ok {
		return v
	}
	max := 0.0
	for _, g := range cal.gens {
		if m := g.systems[cal.st].Builder().RawTextMax(keyword); m > max {
			max = m
		}
	}
	cal.cache[keyword] = max
	return max
}

// wireArenas attaches (or, with ArenaRebuild, builds and writes) one
// arena per strategy on every cold shard generation. Failures log and
// leave that system serving from heap; nothing here is fatal.
// Federated clusters skip arenas entirely — see Config.ArenaDir.
func (c *Cluster) wireArenas(gens []*shardGen, globalFP uint64) {
	if c.cfg.ArenaDir == "" {
		return
	}
	if len(c.cfg.Peers) > 0 {
		c.cfg.Logf("shard: ArenaDir ignored: federated statistics cannot be fingerprint-pinned")
		return
	}
	genCals := make(map[ontoscore.Strategy]*genCalibrator, 4)
	for _, st := range ontoscore.Strategies() {
		genCals[st] = &genCalibrator{gens: gens, st: st, cache: make(map[string]float64)}
	}
	for _, g := range gens {
		dir := arenaShardDir(c.cfg.ArenaDir, g.shard, len(gens))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			c.cfg.Logf("shard: shard %d arenas unavailable: %v", g.shard, err)
			continue
		}
		for _, stray := range arena.CleanupStray(dir) {
			c.cfg.Logf("shard: shard %d: removed stray temp file %s (crashed write)", g.shard, stray)
		}
		for _, st := range ontoscore.Strategies() {
			sys := g.systems[st]
			path := arena.FileFor(dir, st.String())
			a, err := openCompatibleArena(sys, path, globalFP)
			if err != nil && c.cfg.ArenaRebuild {
				// Rebuild with calibration pinned to the incoming
				// generations, then hand the builder back to the cluster
				// calibrator for live serving.
				sys.Builder().SetCalibrator(genCals[st])
				a, err = rebuildArena(sys, path, g.num, globalFP)
				sys.Builder().SetCalibrator(c.calibs[st])
			}
			if err != nil {
				c.cfg.Logf("shard: shard %d arena %s unavailable, serving %s from heap: %v",
					g.shard, path, st, err)
				continue
			}
			sys.UseArena(a)
			g.arenas = append(g.arenas, a)
		}
		if n := len(g.arenas); n > 0 {
			c.cfg.Logf("shard: shard %d generation %d mapped %d arenas from %s", g.shard, g.num, n, dir)
		}
	}
}

// MappedArenaBytes sums the mapped arena bytes across the live local
// shard generations (0 without ArenaDir).
func (c *Cluster) MappedArenaBytes() int {
	total := 0
	for _, sl := range c.slots {
		if sl.remote != nil {
			continue
		}
		g := sl.pin()
		for _, a := range g.arenas {
			total += a.MappedBytes()
		}
		g.release()
	}
	return total
}

func openCompatibleArena(sys *core.System, path string, globalFP uint64) (*arena.Arena, error) {
	a, err := arena.Open(path)
	if err != nil {
		return nil, err
	}
	if err := sys.ArenaCompatible(a, globalFP); err != nil {
		a.Close()
		return nil, err
	}
	return a, nil
}

func rebuildArena(sys *core.System, path string, generation, globalFP uint64) (*arena.Arena, error) {
	if _, err := sys.BuildIndex(); err != nil {
		return nil, fmt.Errorf("building index: %w", err)
	}
	if err := sys.WriteArena(path, generation, globalFP); err != nil {
		return nil, err
	}
	return openCompatibleArena(sys, path, globalFP)
}

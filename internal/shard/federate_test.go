package shard

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/ontology"
	"repro/internal/ontoscore"
	"repro/internal/peer"
	"repro/internal/resilience"
	"repro/internal/xmltree"
)

// newPeerNode stands up one loopback peer node: per-strategy systems
// over a partition view, the shard API handler, an httptest server,
// and a client wired to it.
func newPeerNode(t *testing.T, view *xmltree.Corpus, coll *ontology.Collection, gen uint64, opts peer.Options) *peer.Client {
	t.Helper()
	systems := make(map[string]*core.System, 4)
	for _, st := range ontoscore.Strategies() {
		cfg := core.DefaultConfig()
		cfg.Strategy = st
		systems[st.String()] = core.NewMulti(view, coll, cfg)
	}
	h := peer.NewHandler(peer.HandlerConfig{Source: peer.FixedSource(systems, gen), Logf: t.Logf})
	h.WireGeneration(systems)
	mux := http.NewServeMux()
	h.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	c, err := peer.NewClient(srv.URL, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// newFederation splits the corpus into 1+peers disjoint groups with
// the same stable name hash the in-process cluster partitions by,
// keeps group 0 as the coordinator's local corpus, and serves groups
// 1..peers from loopback peer nodes. It returns the coordinator
// cluster and its local corpus view (for reload tests).
func newFederation(t *testing.T, corpus *xmltree.Corpus, coll *ontology.Collection, peers int, opts peer.Options, cfg Config) (*Cluster, *xmltree.Corpus) {
	t.Helper()
	views := partition(corpus, 1+peers)
	clients := make([]*peer.Client, 0, peers)
	for i := 1; i <= peers; i++ {
		clients = append(clients, newPeerNode(t, views[i], coll, uint64(i), opts))
	}
	cfg.Shards = 1
	cfg.Peers = clients
	cfg.Core = core.DefaultConfig()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	return New(views[0], coll, cfg), views[0]
}

// The acceptance bar for federated serving: with zero faults, a
// coordinator plus N loopback HTTP peers answers byte-identically —
// same roots, same scores under exact float equality, same matches,
// same snippets — to both the in-process sharded cluster and the
// single-node system, across every strategy, both merge modes, and
// the whole query set. Exactness across the network holds because the
// statistics exchange and the coordinator-resolved keyword norms make
// every node score under identical global state, and JSON round-trips
// float64 exactly.
func TestFederatedEquivalence(t *testing.T) {
	corpus, coll := testCorpus(t, 12, 9)
	singles := make(map[ontoscore.Strategy]*core.System)
	for _, st := range ontoscore.Strategies() {
		cfg := core.DefaultConfig()
		cfg.Strategy = st
		singles[st] = core.NewMulti(corpus, coll, cfg)
	}
	for _, peers := range []int{2, 4} {
		fed, _ := newFederation(t, corpus, coll, peers, peer.Options{}, Config{})
		inproc := testCluster(t, corpus, coll, Config{Shards: 1 + peers})
		for _, st := range ontoscore.Strategies() {
			for _, q := range testQueries {
				for _, ranked := range []bool{false, true} {
					name := fmt.Sprintf("peers=%d/%s/%q/ranked=%v", peers, st, q, ranked)
					req := core.SearchRequest{Query: q, K: 10, Ranked: ranked, Explain: true}
					want, err := singles[st].Query(context.Background(), req)
					if err != nil {
						t.Fatalf("%s: single-node: %v", name, err)
					}
					got, err := fed.System(st).Query(context.Background(), req)
					if err != nil {
						t.Fatalf("%s: federated: %v", name, err)
					}
					if got.Partial {
						t.Errorf("%s: healthy federation answered partial", name)
					}
					if len(got.Shards) != 1+peers {
						t.Errorf("%s: %d slot statuses, want %d", name, len(got.Shards), 1+peers)
					}
					assertSameResults(t, name, want, got)

					ip, err := inproc.System(st).Query(context.Background(), req)
					if err != nil {
						t.Fatalf("%s: in-process sharded: %v", name, err)
					}
					assertSameResults(t, name+"/vs-inproc", ip, got)
				}
			}
		}
	}
}

// Snippet and Fragment hydration of a peer-owned result routes back
// over the wire to the owning peer and answers identically to the
// single-node system.
func TestFederatedHydrationRouting(t *testing.T) {
	corpus, coll := testCorpus(t, 10, 7)
	fed, _ := newFederation(t, corpus, coll, 2, peer.Options{}, Config{})
	single := core.NewMulti(corpus, coll, core.DefaultConfig())
	st := ontoscore.StrategyRelationships
	resp, err := fed.System(st).Query(context.Background(), core.SearchRequest{Query: "asthma", K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 {
		t.Fatal("no results to hydrate")
	}
	remoteHydrated := 0
	for _, r := range resp.Results {
		if fed.ownerOf(r.Root.DocID()) < 0 {
			remoteHydrated++
		}
		if got, want := fed.System(st).Snippet(r), single.Snippet(r); got != want {
			t.Errorf("snippet(%s) = %q, want %q", r.Root, got, want)
		}
		if got, want := fed.System(st).Fragment(r), single.Fragment(r); got != want {
			t.Errorf("fragment(%s) = %q, want %q", r.Root, got, want)
		}
	}
	if remoteHydrated == 0 {
		t.Error("no result was owned by a peer; hydration forwarding untested")
	}
}

// A coordinator reload re-runs the federated statistics exchange, so
// answers stay byte-identical to the single-node system afterwards.
func TestFederatedReloadKeepsExchange(t *testing.T) {
	corpus, coll := testCorpus(t, 10, 11)
	fed, local := newFederation(t, corpus, coll, 2, peer.Options{}, Config{})
	single := core.NewMulti(corpus, coll, core.DefaultConfig())
	st := ontoscore.StrategyRelationships

	for _, res := range fed.Reload(context.Background(), local, nil) {
		if res.Error != "" {
			t.Fatalf("reload shard %d: %s", res.Shard, res.Error)
		}
	}
	for _, q := range []string{"asthma", "asthma medications"} {
		req := core.SearchRequest{Query: q, K: 10, Ranked: true, Explain: true}
		want, err := single.Query(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fed.System(st).Query(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "post-reload/"+q, want, got)
	}
}

// The chaos suite: under every peer.rpc failpoint — injected latency,
// refused exchanges, 5xx answers, torn bodies, and trickled bodies —
// a federated search still answers within its budget, degrades to
// partial with the peer slots reported non-ok, and the failing peers'
// breakers open so the next query sheds them without touching the
// network.
func TestFederatedChaos(t *testing.T) {
	corpus, coll := testCorpus(t, 8, 5)
	cases := []struct {
		name string
		arm  func(t *testing.T)
	}{
		{"latency", func(t *testing.T) {
			faultinject.Enable(peer.FPLatency, faultinject.Spec{Mode: faultinject.ModeLatency, Delay: 2 * time.Second})
		}},
		{"refused", func(t *testing.T) {
			faultinject.Enable(peer.FPRefused, faultinject.Spec{})
		}},
		{"5xx", func(t *testing.T) {
			faultinject.Enable(peer.FP5xx, faultinject.Spec{})
		}},
		{"torn", func(t *testing.T) {
			faultinject.Enable(peer.FPTorn, faultinject.Spec{})
		}},
		{"slowbody", func(t *testing.T) {
			t.Cleanup(peer.SetSlowBodyProfile(8, 30*time.Millisecond))
			faultinject.Enable(peer.FPSlowBody, faultinject.Spec{})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := peer.Options{
				Timeout: 250 * time.Millisecond,
				Breaker: resilience.BreakerConfig{Threshold: 1, Cooldown: time.Hour},
				Retry:   resilience.RetryPolicy{MaxAttempts: 1, Jitter: -1},
			}
			// Build (and run the exchange) before arming the failpoint.
			fed, _ := newFederation(t, corpus, coll, 2, opts, Config{Timeout: 300 * time.Millisecond})
			tc.arm(t)
			t.Cleanup(faultinject.DisableAll)

			start := time.Now()
			resp, err := fed.System(ontoscore.StrategyRelationships).Query(context.Background(),
				core.SearchRequest{Query: "asthma", K: 5})
			elapsed := time.Since(start)
			if err != nil {
				t.Fatalf("federated query failed outright (local shard should answer): %v", err)
			}
			if !resp.Partial {
				t.Error("query with every peer failing did not degrade to partial")
			}
			if elapsed > 2*time.Second {
				t.Errorf("degraded query took %v; the deadline was not enforced", elapsed)
			}
			for _, ss := range resp.Shards {
				if ss.Peer == "" && ss.State != "ok" {
					t.Errorf("local shard %d answered %s: %s", ss.Shard, ss.State, ss.Error)
				}
				if ss.Peer != "" && ss.State == "ok" {
					t.Errorf("peer slot %d answered ok under %s", ss.Shard, tc.name)
				}
			}
			for _, pc := range fed.Peers() {
				if pc.Breaker().State() != resilience.Open {
					t.Errorf("peer %s breaker state = %v, want open", pc.Name(), pc.Breaker().State())
				}
			}
			// With the breakers open the next query answers instantly:
			// every peer leg is rejected locally as "open".
			start = time.Now()
			resp, err = fed.System(ontoscore.StrategyRelationships).Query(context.Background(),
				core.SearchRequest{Query: "asthma", K: 5})
			if err != nil {
				t.Fatal(err)
			}
			if elapsed := time.Since(start); elapsed > time.Second {
				t.Errorf("breaker-shed query took %v", elapsed)
			}
			open := 0
			for _, ss := range resp.Shards {
				if ss.State == "open" {
					open++
				}
			}
			if open != 2 {
				t.Errorf("%d slots reported open, want 2", open)
			}
		})
	}
}

// Readiness and statuses see through to the peers: a federation
// reports every slot, names the peers, counts their documents from
// the exchanged snapshot, and loses quorum when the peers' breakers
// open.
func TestFederatedStatuses(t *testing.T) {
	corpus, coll := testCorpus(t, 8, 13)
	opts := peer.Options{
		Breaker: resilience.BreakerConfig{Threshold: 1, Cooldown: time.Hour},
		Retry:   resilience.RetryPolicy{MaxAttempts: 1, Jitter: -1},
	}
	fed, local := newFederation(t, corpus, coll, 2, opts, Config{})
	sts := fed.Statuses()
	if len(sts) != 3 {
		t.Fatalf("%d statuses, want 3", len(sts))
	}
	remoteDocs := 0
	for _, st := range sts {
		if st.Shard >= 1 {
			if st.Peer == "" {
				t.Errorf("slot %d has no peer name", st.Shard)
			}
			remoteDocs += st.Documents
		} else if st.Peer != "" {
			t.Errorf("local slot %d carries peer name %q", st.Shard, st.Peer)
		}
		if !st.Ready {
			t.Errorf("slot %d not ready at startup", st.Shard)
		}
	}
	if want := corpus.Len() - local.Len(); remoteDocs != want {
		t.Errorf("peers report %d documents, want %d", remoteDocs, want)
	}
	if got, want := fed.Documents(), corpus.Len(); got != want {
		t.Errorf("Documents() = %d, want %d", got, want)
	}
	if ready, quorum, ok := fed.Ready(); !ok || ready != 3 || quorum != 2 {
		t.Errorf("Ready() = %d/%d ok=%v, want 3/2 true", ready, quorum, ok)
	}

	// Trip both peer breakers: quorum (majority of 3 = 2) is lost.
	for _, pc := range fed.Peers() {
		pc.Breaker().Failure()
	}
	if ready, _, ok := fed.Ready(); ok || ready != 1 {
		t.Errorf("Ready() after peer failures = %d ok=%v, want 1 false", ready, ok)
	}
}

// Live delta segments are a single-process feature: installing one on
// a federated cluster is refused (logged and ignored) instead of
// dereferencing a remote slot's nil generation.
func TestFederatedRejectsDelta(t *testing.T) {
	corpus, coll := testCorpus(t, 6, 3)
	fed, _ := newFederation(t, corpus, coll, 2, peer.Options{}, Config{})
	fed.InstallDelta(nil, nil) // must not panic and must not install
	if fed.delta != nil {
		t.Fatal("delta overlay installed on a federated cluster")
	}
}

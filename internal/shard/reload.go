package shard

import (
	"context"
	"fmt"
	"time"

	"repro/internal/faultinject"
	"repro/internal/ontology"
	"repro/internal/xmltree"
)

// FPReload fires once per shard, in shard order, just before that
// shard's generation swap; tests arm it (with After/Count) to fail one
// shard's swap while the others advance.
const FPReload = "shard.reload"

// ReloadResult is one shard's outcome of a rolling reload.
type ReloadResult struct {
	Shard      int    `json:"shard"`
	Generation uint64 `json:"generation"`
	Documents  int    `json:"documents"`
	// Error is set when this shard's swap failed; the shard keeps
	// serving its previous generation.
	Error string `json:"error,omitempty"`
	// TookUS is the shard's offline build time in microseconds.
	TookUS int64 `json:"took_us"`
}

// Reload rolls the cluster onto a new corpus snapshot, shard by shard:
// every shard's next generation is built completely offline (with the
// cluster-wide statistics exchange run over the full new partition
// set), then each shard swaps independently. A swap that fails — the
// FPReload failpoint, or a canceled context — leaves only that shard
// on its previous generation; the others advance, and in-flight
// scatter-gather legs finish on whichever generation they pinned.
//
// A partially reloaded cluster serves mixed generations until the next
// successful reload: document routing is rebuilt from the live
// generations (first owner wins on the rare ID collision between old
// and new corpora), and shards still on the old generation keep their
// old — now slightly stale — global statistics overlay. Rankings
// remain well-formed; exact single-node equivalence resumes once all
// shards are on the same snapshot.
func (c *Cluster) Reload(ctx context.Context, corpus *xmltree.Corpus, coll *ontology.Collection) []ReloadResult {
	c.reloadMu.Lock()
	defer c.reloadMu.Unlock()
	start := time.Now()
	if coll != nil {
		c.coll = coll
	}
	local := len(c.slots) - len(c.cfg.Peers)
	gens := c.buildGens(partition(corpus, local))
	c.exchangeStats(gens)
	c.installCalibrators(gens)
	c.installDelta(gens)
	// The new corpus carries a new fingerprint, so stale files are
	// refused and — with ArenaRebuild — fresh per-shard arenas are
	// written for the incoming generations before any of them serve.
	c.wireArenas(gens, corpus.Fingerprint())
	buildUS := time.Since(start).Microseconds()

	results := make([]ReloadResult, 0, local)
	swapped := 0
	for i, sl := range c.slots {
		if sl.remote != nil {
			// Peers reload themselves; the federated statistics exchange
			// above already refreshed their snapshot and re-pushed the
			// merged globals.
			continue
		}
		res := ReloadResult{Shard: i, TookUS: buildUS}
		err := ctx.Err()
		if err == nil {
			err = faultinject.Hit(FPReload)
		}
		if err != nil {
			old := sl.gen.Load()
			res.Generation = old.num
			res.Documents = old.corpus.Len()
			res.Error = fmt.Sprintf("swap failed, keeping generation %d: %v", old.num, err)
			c.cfg.Logf("shard: shard %d reload failed mid-swap, keeping generation %d: %v", i, old.num, err)
			results = append(results, res)
			continue
		}
		next := gens[i]
		next.onRelease = c.fireRelease
		old := sl.gen.Swap(next)
		old.release()
		swapped++
		res.Generation = next.num
		res.Documents = next.corpus.Len()
		results = append(results, res)
	}

	// Routing and calibration follow whatever mix of generations is now
	// live.
	owners := make(map[int32]int, corpus.Len())
	for _, sl := range c.slots {
		if sl.remote != nil {
			continue
		}
		g := sl.pin()
		for _, doc := range g.corpus.Docs() {
			if _, taken := owners[doc.ID]; !taken {
				owners[doc.ID] = sl.id
			}
		}
		g.release()
	}
	c.owners.Store(&owners)
	c.purgeRemoteOwners()
	for _, cal := range c.calibs {
		cal.invalidate()
	}
	c.cfg.Logf("shard: rolling reload complete: %d/%d shards swapped in %v",
		swapped, local, time.Since(start).Round(time.Millisecond))
	return results
}

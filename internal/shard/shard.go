// Package shard partitions the corpus into N document shards and
// serves searches by scatter-gather: every shard is an independent,
// reference-counted generation (its own corpus view, XOnto-DIL
// builders, and query engines), the coordinator fans a query out to
// all shards in parallel and merges the per-shard top-k with the
// loser-tree machinery of internal/query.
//
// Sharded ranking is exactly single-node ranking. Three pieces make
// that true rather than approximately true:
//
//   - Partition views share documents with the source corpus under
//     their original IDs (xmltree.Corpus.AddExisting), so Dewey
//     identifiers — and with them result roots and matches — are
//     byte-identical to the unsharded system.
//   - BM25 depends on collection-global statistics (N, DF, avgdl).
//     Each shard computes its local ir.Stats; the cluster merges them
//     (additive under a disjoint document partition) and broadcasts
//     the merged snapshot back onto every shard's text index — the
//     classic distributed-IR global-IDF exchange.
//   - Per-keyword score normalization divides by the collection-wide
//     maximum raw BM25. A cluster Calibrator answers that maximum by
//     asking every shard for its local max (dil.Builder.RawTextMax)
//     and caching the result per keyword.
//
// Because results partition by document and every shard returns its
// full top-k under the engine's total order (score desc, Dewey asc),
// the merged prefix equals the single-node top-k.
//
// Availability: each shard slot is guarded by its own circuit breaker;
// a slow, failed, or breaker-open shard yields a partial answer
// (SearchResponse.Partial) with per-shard status instead of an error.
// Shards hot-reload independently — a reload that fails mid-swap
// leaves only that shard on its previous generation while the others
// advance.
package shard

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/dil"
	"repro/internal/ir"
	"repro/internal/ontology"
	"repro/internal/ontoscore"
	"repro/internal/peer"
	"repro/internal/resilience"
	"repro/internal/xmltree"
)

// DefaultTimeout is the per-shard query budget when Config.Timeout is
// unset.
const DefaultTimeout = 2 * time.Second

// Config tunes a cluster. The zero value of every field takes the
// documented default.
type Config struct {
	// Shards is the number of document shards; <= 0 means 1.
	Shards int
	// Timeout is the per-shard query budget; a shard that does not
	// answer within it is reported as "timeout" and the query proceeds
	// with the shards that did. <= 0 means DefaultTimeout.
	Timeout time.Duration
	// Quorum is how many slots (local shards plus peers) must be ready
	// (breaker not open) for the cluster to report ready; <= 0 means a
	// majority (n/2 + 1).
	Quorum int
	// Peers are remote shard nodes: each one becomes a slot served over
	// the HTTP shard API instead of an in-process generation. The
	// local corpus is still partitioned across Shards local slots; the
	// peers bring their own documents. The cluster runs the federated
	// statistics exchange against them at startup and on every reload,
	// so federated scores stay byte-identical to a single node holding
	// the union of all partitions.
	Peers []*peer.Client
	// Core is the base system configuration; Strategy is overridden
	// per prepared system.
	Core core.Config
	// Breaker tunes the per-shard circuit breaker (zero value:
	// resilience defaults).
	Breaker resilience.BreakerConfig
	// ArenaDir, when set, serves each shard's postings from
	// memory-mapped arena files under
	// <ArenaDir>/shard-<i>-of-<n>/<Strategy>.xarn; a missing or stale
	// file falls back to heap serving (and is rebuilt with
	// ArenaRebuild). Ignored when Peers are configured: stored shard
	// scores depend on the federation-wide statistics exchange, which
	// the arena fingerprints cannot pin.
	ArenaDir string
	// ArenaRebuild makes missing or incompatible shard arenas get
	// rebuilt (full per-shard index build + atomic write) at cluster
	// construction and on every reload.
	ArenaRebuild bool
	// Logf receives cluster lifecycle logs; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) normalized() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	total := c.Shards + len(c.Peers)
	if c.Quorum <= 0 || c.Quorum > total {
		c.Quorum = total/2 + 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Manifest records what one shard generation was built from — the
// shard's own ingest manifest, kept in memory and swapped with the
// generation it describes.
type Manifest struct {
	// Shard is the slot index.
	Shard int `json:"shard"`
	// Generation is the cluster-wide generation number of this build.
	Generation uint64 `json:"generation"`
	// Documents is the number of documents assigned to the shard.
	Documents int `json:"documents"`
	// Elements is the number of XML elements across those documents.
	Elements int `json:"elements"`
	// BuildUS is the offline build time of the shard's systems, in
	// microseconds.
	BuildUS int64 `json:"build_us"`
}

// shardGen is one immutable serving snapshot of a single shard: its
// partition-view corpus and one prepared system per strategy,
// reference-counted exactly like the server's generations so a reload
// never pulls a corpus out from under an in-flight scatter-gather leg.
type shardGen struct {
	num      uint64
	corpus   *xmltree.Corpus
	systems  map[ontoscore.Strategy]*core.System
	manifest Manifest

	// arenas are the memory-mapped index files this shard generation
	// serves from (Config.ArenaDir; empty otherwise), unmapped when the
	// generation drains.
	arenas []*arena.Arena

	// refs counts pins plus one for being (or having been) the slot's
	// active generation; 0 means drained.
	refs      atomic.Int64
	onRelease func(shard int, num uint64)
	shard     int
}

func (g *shardGen) acquire() bool {
	for {
		n := g.refs.Load()
		if n == 0 {
			return false
		}
		if g.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

func (g *shardGen) release() {
	if g.refs.Add(-1) == 0 {
		for _, a := range g.arenas {
			a.Close()
		}
		if g.onRelease != nil {
			g.onRelease(g.shard, g.num)
		}
	}
}

// slot is one shard's long-lived identity. A local slot holds an
// atomic generation pointer queries pin; a remote slot holds a peer
// client instead (gen stays nil) and shares the client's breaker so
// readiness and quorum see the same failure record the transport
// feeds.
type slot struct {
	id      int
	gen     atomic.Pointer[shardGen]
	breaker *resilience.Breaker

	// remote, when non-nil, marks this slot as served by a peer node.
	remote *peer.Client
	// peerStats caches the peer's last-fetched statistics snapshot
	// (documents, generation) for statuses and gauges.
	peerStats atomic.Pointer[peer.StatsWire]
}

// pin returns the slot's active generation with a reference held.
func (sl *slot) pin() *shardGen {
	for {
		g := sl.gen.Load()
		if g.acquire() {
			return g
		}
	}
}

// Cluster owns the shard slots and the per-strategy scatter-gather
// facades. It is built once and lives across server generations;
// shards reload independently through Reload.
type Cluster struct {
	cfg   Config
	coll  *ontology.Collection
	slots []*slot

	genCounter atomic.Uint64

	// owners maps document ID -> slot index, rebuilt on reload (under
	// reloadMu) and read lock-free by Snippet/Fragment routing.
	owners atomic.Pointer[map[int32]int]

	// remoteOwn lazily maps document IDs seen in peer answers to the
	// remote slot that served them, so Snippet/Fragment hydration
	// routes back to the owning peer. Purged on reload.
	remoteOwnMu sync.RWMutex
	remoteOwn   map[int32]int

	systems map[ontoscore.Strategy]*Sharded
	calibs  map[ontoscore.Strategy]*calibrator

	reloadMu sync.Mutex

	// delta, when non-nil, overlays every slot with a live segment
	// (InstallDelta); deltaBase returns the full-corpus calibration
	// authority per strategy. Written under reloadMu before traffic.
	delta     DeltaOverlay
	deltaBase func(st ontoscore.Strategy) *dil.Builder

	metrics *metrics // nil until Instrument
}

// shardOf assigns a document to a shard by a stable FNV-1a hash of its
// name (falling back to its decimal ID for anonymous documents), so
// the same document lands on the same shard across reloads and across
// processes regardless of ingestion order.
func shardOf(doc *xmltree.Document, n int) int {
	if doc.Name != "" {
		return shardOfName(doc.Name, n)
	}
	return shardOfName(strconv.FormatInt(int64(doc.ID), 10), n)
}

// partition splits a corpus into n document-partition views sharing
// the original documents (and therefore the original IDs and Dewey
// identifiers).
func partition(corpus *xmltree.Corpus, n int) []*xmltree.Corpus {
	views := make([]*xmltree.Corpus, n)
	for i := range views {
		views[i] = xmltree.NewCorpus()
	}
	for _, doc := range corpus.Docs() {
		views[shardOf(doc, n)].AddExisting(doc)
	}
	return views
}

// New partitions the local corpus across the local shard slots,
// builds every shard's first generation in parallel, appends one slot
// per configured peer, and runs the (federated, when peers are
// present) statistics exchange so each shard — local or remote —
// scores with collection-global BM25 statistics.
func New(corpus *xmltree.Corpus, coll *ontology.Collection, cfg Config) *Cluster {
	cfg = cfg.normalized()
	c := &Cluster{
		cfg:       cfg,
		coll:      coll,
		slots:     make([]*slot, 0, cfg.Shards+len(cfg.Peers)),
		systems:   make(map[ontoscore.Strategy]*Sharded, 4),
		calibs:    make(map[ontoscore.Strategy]*calibrator, 4),
		remoteOwn: make(map[int32]int),
	}
	for i := 0; i < cfg.Shards; i++ {
		c.slots = append(c.slots, &slot{id: i, breaker: resilience.NewBreaker(cfg.Breaker)})
	}
	for _, pc := range cfg.Peers {
		c.slots = append(c.slots, &slot{id: len(c.slots), remote: pc, breaker: pc.Breaker()})
	}
	gens := c.buildGens(partition(corpus, cfg.Shards))
	c.exchangeStats(gens)
	owners := make(map[int32]int, corpus.Len())
	for i, g := range gens {
		g.onRelease = c.fireRelease
		c.slots[i].gen.Store(g)
		for _, doc := range g.corpus.Docs() {
			owners[doc.ID] = i
		}
	}
	c.owners.Store(&owners)
	for _, st := range ontoscore.Strategies() {
		cal := &calibrator{c: c, st: st, cache: make(map[string]float64)}
		c.calibs[st] = cal
		c.systems[st] = &Sharded{c: c, st: st}
	}
	c.installCalibrators(gens)
	// Arenas attach last: a rebuild runs each shard's index build, which
	// must see the merged global statistics and the cluster calibrator
	// (installed above) for stored scores to match single-node ranking.
	c.wireArenas(gens, corpus.Fingerprint())
	c.cfg.Logf("shard: cluster up: %d local shards, %d peers, %d local documents, per-shard timeout %v, quorum %d",
		cfg.Shards, len(cfg.Peers), corpus.Len(), cfg.Timeout, cfg.Quorum)
	return c
}

// buildGens builds one generation per partition view, in parallel —
// each build touches only its own view, so the builds are independent.
func (c *Cluster) buildGens(views []*xmltree.Corpus) []*shardGen {
	gens := make([]*shardGen, len(views))
	var wg sync.WaitGroup
	for i, view := range views {
		wg.Add(1)
		go func(i int, view *xmltree.Corpus) {
			defer wg.Done()
			gens[i] = c.buildGen(i, view)
		}(i, view)
	}
	wg.Wait()
	return gens
}

func (c *Cluster) buildGen(id int, view *xmltree.Corpus) *shardGen {
	start := time.Now()
	g := &shardGen{
		num:     c.genCounter.Add(1),
		corpus:  view,
		systems: make(map[ontoscore.Strategy]*core.System, 4),
		shard:   id,
	}
	for _, st := range ontoscore.Strategies() {
		cfg := c.cfg.Core
		cfg.Strategy = st
		g.systems[st] = core.NewMulti(view, c.coll, cfg)
	}
	elements := 0
	for _, doc := range view.Docs() {
		elements += doc.Size()
	}
	g.manifest = Manifest{
		Shard:      id,
		Generation: g.num,
		Documents:  view.Len(),
		Elements:   elements,
		BuildUS:    time.Since(start).Microseconds(),
	}
	g.refs.Store(1) // the active reference
	return g
}

// exchangeStats merges every shard's local text-index statistics —
// local generations and remote peers alike — and broadcasts the
// collection-global snapshot (and the global element-rank normalizer)
// back onto each local shard's builders and out to every peer over
// POST /shard/stats. Run on local generations that are not serving
// yet — the overlay is installed while the indexes are cold.
func (c *Cluster) exchangeStats(gens []*shardGen) {
	remote := c.fetchPeerStats()
	merged := make(map[string]peer.StrategyStatsWire, 4)
	for _, st := range ontoscore.Strategies() {
		parts := make([]ir.Stats, 0, len(gens)+len(remote))
		ranksMax := 0.0
		for _, g := range gens {
			b := g.systems[st].Builder()
			parts = append(parts, b.LocalTextStats())
			if rm := b.RanksMax(); rm > ranksMax {
				ranksMax = rm
			}
		}
		for _, sw := range remote {
			if s, ok := sw.Strategies[st.String()]; ok {
				parts = append(parts, ir.Stats{N: s.N, TotalLen: s.TotalLen, DF: s.DF})
				if s.RanksMax > ranksMax {
					ranksMax = s.RanksMax
				}
			}
		}
		m := ir.MergeStats(parts...)
		for _, g := range gens {
			b := g.systems[st].Builder()
			b.SetGlobalTextStats(m)
			b.SetRanksMax(ranksMax)
		}
		merged[st.String()] = peer.StrategyStatsWire{
			N: m.N, TotalLen: m.TotalLen, DF: m.DF, RanksMax: ranksMax,
		}
	}
	c.pushPeerStats(merged)
}

// installCalibrators points every builder of the given generations at
// the cluster's per-strategy keyword-norm calibrator.
func (c *Cluster) installCalibrators(gens []*shardGen) {
	for _, g := range gens {
		for st, sys := range g.systems {
			sys.Builder().SetCalibrator(c.calibs[st])
		}
	}
}

func (c *Cluster) fireRelease(shard int, num uint64) {
	c.cfg.Logf("shard: shard %d generation %d drained and released", shard, num)
}

// Config returns the normalized cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Shards is the number of shard slots.
func (c *Cluster) Shards() int { return len(c.slots) }

// System returns the scatter-gather facade for one strategy. The
// facade implements the same Query/Snippet/Fragment surface as
// *core.System, so the serving and server layers use it unchanged.
func (c *Cluster) System(st ontoscore.Strategy) *Sharded { return c.systems[st] }

// ownerOf locates the slot currently serving a document ID (-1 when
// no shard has it — possible transiently across a partial reload).
func (c *Cluster) ownerOf(docID int32) int {
	owners := c.owners.Load()
	if owners == nil {
		return -1
	}
	if i, ok := (*owners)[docID]; ok {
		return i
	}
	return -1
}

// calibrator answers collection-wide per-keyword normalization maxima
// for one strategy: the max over every shard's local max raw BM25 for
// the keyword. Answers are cached per keyword; the cache is dropped
// whenever any shard swaps generations. Concurrent misses may compute
// the same keyword twice — both arrive at the same value, so the
// duplicate work is bounded and harmless.
type calibrator struct {
	c  *Cluster
	st ontoscore.Strategy

	mu    sync.Mutex
	cache map[string]float64
}

// KeywordNorm implements dil.Calibrator. It is called from inside a
// shard's own keyword build; pinning is refcount-only and builders
// take no locks on this path, so the cross-shard callback cannot
// deadlock. With peers in the cluster the coordinator pre-resolves
// query keywords (resolveAll) before the fan-out, so this path hits
// the cache and never blocks a build on the network.
func (cal *calibrator) KeywordNorm(keyword string) float64 {
	return cal.resolve(context.Background(), keyword)
}

// resolve answers the federation-wide per-keyword max raw BM25: the
// max over every local shard's RawTextMax and every peer's answer to
// GET /shard/stats?keyword=. The value is cached only when every slot
// answered — a miss on a flaky peer is retried by the next query
// instead of freezing a too-small divisor.
func (cal *calibrator) resolve(ctx context.Context, keyword string) float64 {
	cal.mu.Lock()
	v, ok := cal.cache[keyword]
	cal.mu.Unlock()
	if ok {
		return v
	}
	max := 0.0
	complete := true
	for _, sl := range cal.c.slots {
		if sl.remote != nil {
			m, ok := cal.c.remoteKeywordMax(ctx, sl, keyword, cal.st)
			if !ok {
				complete = false
			} else if m > max {
				max = m
			}
			continue
		}
		g := sl.pin()
		if m := g.systems[cal.st].Builder().RawTextMax(keyword); m > max {
			max = m
		}
		g.release()
	}
	if complete {
		cal.mu.Lock()
		cal.cache[keyword] = max
		cal.mu.Unlock()
	}
	return max
}

func (cal *calibrator) invalidate() {
	cal.mu.Lock()
	cal.cache = make(map[string]float64)
	cal.mu.Unlock()
}

// Status is one shard's readiness snapshot for /readyz.
type Status struct {
	Shard int `json:"shard"`
	// Peer names the remote node serving this slot; empty for local
	// shards. Remote generation and document counts reflect the last
	// fetched statistics snapshot.
	Peer       string                    `json:"peer,omitempty"`
	Generation uint64                    `json:"generation"`
	Documents  int                       `json:"documents"`
	Breaker    resilience.BreakerMetrics `json:"breaker"`
	// Ready is false while the shard's breaker is open — the slot is
	// being skipped by scatter-gather, so its documents are not being
	// searched.
	Ready bool `json:"ready"`
	// Manifest describes what the serving generation was built from.
	Manifest Manifest `json:"manifest"`
}

// Statuses snapshots every shard slot.
func (c *Cluster) Statuses() []Status {
	out := make([]Status, 0, len(c.slots))
	for _, sl := range c.slots {
		m := sl.breaker.Metrics()
		if sl.remote != nil {
			st := Status{
				Shard:   sl.id,
				Peer:    sl.remote.Name(),
				Breaker: m,
				Ready:   m.State != resilience.Open.String(),
			}
			if sw := sl.peerStats.Load(); sw != nil {
				st.Generation = sw.Generation
				st.Documents = sw.Documents
				st.Manifest = Manifest{Shard: sl.id, Generation: sw.Generation, Documents: sw.Documents}
			}
			out = append(out, st)
			continue
		}
		g := sl.pin()
		out = append(out, Status{
			Shard:      sl.id,
			Generation: g.num,
			Documents:  g.corpus.Len(),
			Breaker:    m,
			Ready:      m.State != resilience.Open.String(),
			Manifest:   g.manifest,
		})
		g.release()
	}
	return out
}

// Ready counts ready shards against the configured quorum.
func (c *Cluster) Ready() (ready, quorum int, ok bool) {
	for _, sl := range c.slots {
		if sl.breaker.State() != resilience.Open {
			ready++
		}
	}
	return ready, c.cfg.Quorum, ready >= c.cfg.Quorum
}

// Documents is the total document count across shards; peer counts
// come from the last fetched statistics snapshot.
func (c *Cluster) Documents() int {
	total := 0
	for _, sl := range c.slots {
		if sl.remote != nil {
			if sw := sl.peerStats.Load(); sw != nil {
				total += sw.Documents
			}
			continue
		}
		g := sl.pin()
		total += g.corpus.Len()
		g.release()
	}
	return total
}

// Summary describes the cluster for logs.
func (c *Cluster) Summary() string {
	ready, quorum, _ := c.Ready()
	return fmt.Sprintf("shards=%d peers=%d ready=%d quorum=%d documents=%d",
		len(c.slots)-len(c.cfg.Peers), len(c.cfg.Peers), ready, quorum, c.Documents())
}

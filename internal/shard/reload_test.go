package shard

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/ontoscore"
)

// After a full rolling reload the cluster answers exactly like a
// single-node system over the new corpus — routing, statistics, and
// calibration all follow the swap.
func TestReloadEquivalence(t *testing.T) {
	corpus, coll := testCorpus(t, 8, 21)
	cluster := testCluster(t, corpus, coll, Config{Shards: 4})
	next, nextColl := testCorpus(t, 14, 22)
	results := cluster.Reload(context.Background(), next, nextColl)
	for _, r := range results {
		if r.Error != "" {
			t.Fatalf("shard %d reload failed: %s", r.Shard, r.Error)
		}
	}
	if got := cluster.Documents(); got != next.Len() {
		t.Fatalf("cluster serves %d documents after reload, want %d", got, next.Len())
	}
	cfg := core.DefaultConfig()
	single := core.NewMulti(next, nextColl, cfg)
	for _, q := range testQueries {
		req := core.SearchRequest{Query: q, K: 10, Explain: true}
		want, err := single.Query(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cluster.System(ontoscore.StrategyRelationships).Query(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "post-reload/"+q, want, got)
	}
}

// A reload that fails mid-swap leaves only the failed shard on its
// previous generation; the others advance, queries keep answering
// (mixed generations), and the next clean reload converges everything.
func TestReloadMidSwapFailure(t *testing.T) {
	corpus, coll := testCorpus(t, 8, 31)
	cluster := testCluster(t, corpus, coll, Config{Shards: 4})
	before := cluster.Statuses()

	next, nextColl := testCorpus(t, 12, 32)
	// Fail exactly the second shard's swap (FPReload fires in shard
	// order): shard 0 passes, shard 1 trips, shards 2-3 pass.
	faultinject.Enable(FPReload, faultinject.Spec{Mode: faultinject.ModeError, After: 1, Count: 1})
	results := cluster.Reload(context.Background(), next, nextColl)
	faultinject.DisableAll()

	for _, r := range results {
		if r.Shard == 1 {
			if r.Error == "" {
				t.Fatal("shard 1 swap should have failed")
			}
			if r.Generation != before[1].Generation {
				t.Fatalf("failed shard moved to generation %d, had %d", r.Generation, before[1].Generation)
			}
		} else if r.Error != "" {
			t.Fatalf("shard %d swap failed: %s", r.Shard, r.Error)
		} else if r.Generation <= before[r.Shard].Generation {
			t.Fatalf("shard %d did not advance: generation %d", r.Shard, r.Generation)
		}
	}

	// Mixed generations still serve every query without errors.
	for _, q := range testQueries {
		resp, err := cluster.System(ontoscore.StrategyRelationships).Query(context.Background(),
			core.SearchRequest{Query: q, K: 10})
		if err != nil {
			t.Fatalf("%q on mixed generations: %v", q, err)
		}
		if resp.Partial {
			t.Fatalf("%q on mixed generations answered partial", q)
		}
	}

	// A clean reload converges: all shards advance and single-node
	// equivalence over the new corpus is restored.
	for _, r := range cluster.Reload(context.Background(), next, nextColl) {
		if r.Error != "" {
			t.Fatalf("convergence reload: shard %d: %s", r.Shard, r.Error)
		}
	}
	single := core.NewMulti(next, nextColl, core.DefaultConfig())
	for _, q := range testQueries {
		req := core.SearchRequest{Query: q, K: 10}
		want, _ := single.Query(context.Background(), req)
		got, err := cluster.System(ontoscore.StrategyRelationships).Query(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "converged/"+q, want, got)
	}
}

// The race-lane stress: scatter-gather queries, hydration, and status
// probes run continuously while the cluster reloads repeatedly —
// including a reload whose middle shard fails its swap. Every query
// must answer (full, never partial: reloads are not a failure path),
// and every hydration must come from the generation that produced the
// result. Run under -race this exercises the pin/swap/release
// lifecycle across all shards.
func TestConcurrentReloadRace(t *testing.T) {
	corpusA, collA := testCorpus(t, 10, 41)
	corpusB, collB := testCorpus(t, 12, 42)
	cluster := testCluster(t, corpusA, collA, Config{Shards: 4})
	st := ontoscore.StrategyRelationships

	stop := make(chan struct{})
	var failures atomic.Int64
	var queries atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := testQueries[w%len(testQueries)]
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := cluster.System(st).Query(context.Background(),
					core.SearchRequest{Query: q, K: 5})
				if err != nil || resp.Partial {
					failures.Add(1)
					return
				}
				for _, r := range resp.Results {
					// Hydration may race a swap of the owning shard; it
					// must still answer from a coherent generation
					// (possibly empty on a transient routing miss, never
					// a panic or a race).
					_ = cluster.System(st).Snippet(r)
				}
				_ = cluster.Statuses()
				queries.Add(1)
			}
		}(w)
	}

	for i := 0; i < 6; i++ {
		corpus, coll := corpusB, collB
		if i%2 == 1 {
			corpus, coll = corpusA, collA
		}
		if i == 3 {
			// One rolling reload fails its middle shard mid-swap while
			// queries are in flight.
			faultinject.Enable(FPReload, faultinject.Spec{Mode: faultinject.ModeError, After: 2, Count: 1})
		}
		cluster.Reload(context.Background(), corpus, coll)
		if i == 3 {
			faultinject.DisableAll()
		}
	}
	close(stop)
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d queries failed or went partial during reloads", n)
	}
	if queries.Load() == 0 {
		t.Fatal("no queries completed during the reload storm")
	}
}

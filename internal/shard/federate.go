package shard

import (
	"context"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ontoscore"
	"repro/internal/peer"
	"repro/internal/query"
	"repro/internal/xmltree"
)

// Federation: a cluster whose Config carries Peers serves some slots
// over the HTTP shard API (internal/peer) instead of in-process
// generations. The same three exactness pieces the in-process cluster
// relies on hold across the network:
//
//   - Peers hold disjoint document partitions under their original
//     Dewey identifiers, so merged results are byte-identical.
//   - The federated statistics exchange (exchangeStats) pulls every
//     peer's local ir.Stats over GET /shard/stats, merges them with
//     the local shards', and pushes the global snapshot back over
//     POST /shard/stats — at startup and on every reload.
//   - The coordinator resolves federation-wide per-keyword norms
//     (calibrator.resolve asks peers for their local maxima) and
//     ships the resolved values inside every search leg, so a peer
//     scores with the same divisors as everyone else.
//
// Availability follows the in-process model: a slow, broken, or
// partitioned peer is one failed leg — the answer degrades to partial
// with per-slot status, and the peer's breaker (shared between the
// client transport and the slot) sheds it until it recovers.

// statsExchangeTimeout bounds the startup/reload statistics exchange
// against an unresponsive peer; the exchange proceeds with whoever
// answered.
const statsExchangeTimeout = 30 * time.Second

// hasPeers reports whether any slot is remote.
func (c *Cluster) hasPeers() bool { return len(c.cfg.Peers) > 0 }

// Peers exposes the cluster's peer clients (metrics, shutdown).
func (c *Cluster) Peers() []*peer.Client { return c.cfg.Peers }

// fetchPeerStats pulls every peer's partition-local statistics for
// the exchange, caching the snapshot on the slot for statuses and
// gauges. A peer that does not answer contributes nothing — its
// breaker records the failure and the exchange proceeds.
func (c *Cluster) fetchPeerStats() []*peer.StatsWire {
	if !c.hasPeers() {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), statsExchangeTimeout)
	defer cancel()
	out := make([]*peer.StatsWire, 0, len(c.cfg.Peers))
	for _, sl := range c.slots {
		if sl.remote == nil {
			continue
		}
		sw, err := sl.remote.Stats(ctx)
		if err != nil {
			c.cfg.Logf("shard: peer %s stats fetch failed (exchange proceeds without it): %v",
				sl.remote.Name(), err)
			continue
		}
		sl.peerStats.Store(sw)
		out = append(out, sw)
	}
	return out
}

// pushPeerStats installs the cluster-merged global statistics on every
// peer — the second half of the distributed-IR exchange.
func (c *Cluster) pushPeerStats(merged map[string]peer.StrategyStatsWire) {
	if !c.hasPeers() || len(merged) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), statsExchangeTimeout)
	defer cancel()
	in := &peer.InstallWire{V: peer.APIVersion, Strategies: merged}
	for _, sl := range c.slots {
		if sl.remote == nil {
			continue
		}
		if _, err := sl.remote.InstallStats(ctx, in); err != nil {
			c.cfg.Logf("shard: peer %s stats install failed (peer scores with stale stats until the next exchange): %v",
				sl.remote.Name(), err)
		}
	}
}

// remoteKeywordMax asks one peer for its local raw-BM25 maximum for a
// keyword under the calibrator's strategy. ok is false when the peer
// did not answer — the caller then skips caching so the next query
// retries.
func (c *Cluster) remoteKeywordMax(ctx context.Context, sl *slot, keyword string, st ontoscore.Strategy) (float64, bool) {
	nctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	nw, err := sl.remote.KeywordNorms(nctx, keyword)
	if err != nil {
		c.cfg.Logf("shard: peer %s keyword-norm fetch for %q failed: %v", sl.remote.Name(), keyword, err)
		return 0, false
	}
	return nw.Norms[st.String()], true
}

// resolveAll resolves the federation-wide norm for every query keyword
// before the fan-out, priming the calibrator cache (so local legs
// never block a keyword build on the network) and returning the map a
// remote leg ships inside its search request.
func (cal *calibrator) resolveAll(ctx context.Context, keywords []query.Keyword) map[string]float64 {
	norms := make(map[string]float64, len(keywords))
	for _, kw := range keywords {
		norms[string(kw)] = cal.resolve(ctx, string(kw))
	}
	return norms
}

// noteRemoteOwners records which remote slot served each result's
// document, so later Snippet/Fragment hydration routes back to the
// owning peer.
func (c *Cluster) noteRemoteOwners(slotID int, results []core.Result) {
	if len(results) == 0 {
		return
	}
	c.remoteOwnMu.Lock()
	for _, r := range results {
		c.remoteOwn[r.Root.DocID()] = slotID
	}
	c.remoteOwnMu.Unlock()
}

// remoteOwnerOf answers the remote slot last seen serving a document
// (-1 when unknown).
func (c *Cluster) remoteOwnerOf(docID int32) int {
	c.remoteOwnMu.RLock()
	i, ok := c.remoteOwn[docID]
	c.remoteOwnMu.RUnlock()
	if !ok {
		return -1
	}
	return i
}

// purgeRemoteOwners drops the lazy owner records (reload: a peer may
// repartition).
func (c *Cluster) purgeRemoteOwners() {
	c.remoteOwnMu.Lock()
	c.remoteOwn = make(map[int32]int)
	c.remoteOwnMu.Unlock()
}

// queryRemote runs one scatter leg against a peer over the shard API:
// the client's breaker gates admission (an open breaker answers
// locally as state "open"), the per-shard budget travels as both the
// context and the X-Deadline header, and every transport failure —
// already recorded against the peer's breaker by the client — maps to
// the same status states the in-process legs use. Like queryShard it
// always answers on ch (buffered), so a straggler never blocks the
// gather.
func (s *Sharded) queryRemote(ctx context.Context, sl *slot, req core.SearchRequest, norms map[string]float64, ch chan<- answer) {
	start := time.Now()
	stat := core.ShardStatus{Shard: sl.id, Peer: sl.remote.Name()}
	defer func() {
		if s.c.metrics != nil {
			s.c.metrics.record(sl.id, stat.State, time.Since(start))
		}
	}()

	kws := make([]string, len(req.Keywords))
	for i, kw := range req.Keywords {
		kws[i] = string(kw)
	}
	wire := &peer.SearchRequestWire{
		V:        peer.APIVersion,
		Strategy: s.st.String(),
		Keywords: kws,
		K:        req.K,
		Offset:   req.Offset,
		Ranked:   req.Ranked,
		Explain:  req.Explain,
		Norms:    norms,
	}
	sctx, cancel := context.WithTimeout(ctx, s.c.cfg.Timeout)
	defer cancel()
	sctx, sp := obs.StartSpan(sctx, "peer.search")
	sp.SetAttr("shard", sl.id)
	sp.SetAttr("peer", sl.remote.Name())
	defer sp.End()

	resp, err := sl.remote.Search(sctx, wire)
	stat.ElapsedUS = time.Since(start).Microseconds()
	if err != nil {
		switch {
		case errors.Is(err, peer.ErrBreakerOpen):
			stat.State = "open"
			stat.Error = "peer circuit breaker open"
		case errors.Is(err, context.DeadlineExceeded):
			stat.State = "timeout"
			stat.Error = err.Error()
		default:
			stat.State = "error"
			stat.Error = err.Error()
		}
		sp.SetAttr("error", stat.Error)
		ch <- answer{id: sl.id, stat: stat}
		return
	}

	out := &core.SearchResponse{}
	out.Info.Degraded = resp.Degraded
	out.Info.DegradedKeywords = resp.DegradedKeywords
	if p := resp.Pruning; p != nil {
		out.Pruning = query.PruneStats{
			PostingsScored:  p.PostingsScored,
			BlocksSkipped:   p.BlocksSkipped,
			DocsSkipped:     p.DocsSkipped,
			EarlyTerminated: p.EarlyTerminated,
		}
	}
	for _, rw := range resp.Results {
		root, perr := xmltree.ParseDewey(rw.Root)
		if perr != nil {
			stat.State = "error"
			stat.Error = "peer answered an undecodable result root " + rw.Root
			sp.SetAttr("error", stat.Error)
			ch <- answer{id: sl.id, stat: stat}
			return
		}
		matches := make([]core.KeywordMatch, 0, len(rw.Matches))
		for _, m := range rw.Matches {
			id, perr := xmltree.ParseDewey(m.ID)
			if perr != nil {
				stat.State = "error"
				stat.Error = "peer answered an undecodable match id " + m.ID
				sp.SetAttr("error", stat.Error)
				ch <- answer{id: sl.id, stat: stat}
				return
			}
			matches = append(matches, core.KeywordMatch{Keyword: m.Keyword, ID: id, Score: m.Score, Path: m.Path})
		}
		out.Results = append(out.Results, core.RemoteResult(root, rw.Score, rw.Document, rw.Path, matches))
		if req.Explain {
			out.Snippets = append(out.Snippets, rw.Snippet)
		}
	}
	s.c.noteRemoteOwners(sl.id, out.Results)
	stat.State = "ok"
	stat.Generation = resp.Generation
	stat.Results = len(out.Results)
	sp.SetAttr("results", len(out.Results))
	ch <- answer{id: sl.id, stat: stat, resp: out}
}

// remoteHydrate asks the owning peer to rebuild a result's snippet
// and/or XML fragment. Failures hydrate to "" — the same silent
// degradation the local path shows for an unroutable document.
func (s *Sharded) remoteHydrate(sl *slot, r core.Result, snippet, fragment bool) peer.FragmentWire {
	req := peer.FragmentRequest{
		Root:     r.Root.String(),
		Strategy: s.st.String(),
		Snippet:  snippet,
		Fragment: fragment,
	}
	for _, m := range r.Matches {
		req.Matches = append(req.Matches, m.ID.String()+"|"+m.Keyword)
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.c.cfg.Timeout)
	defer cancel()
	fw, err := sl.remote.Fragment(ctx, req)
	if err != nil {
		s.c.cfg.Logf("shard: peer %s hydration for %s failed: %v", sl.remote.Name(), req.Root, err)
		return peer.FragmentWire{}
	}
	return *fw
}

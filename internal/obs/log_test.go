package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"testing"
)

func TestLoggerTraceCorrelation(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelInfo)

	tr := NewTracer(4)
	ctx, root := tr.StartRoot(context.Background(), "req")
	log.InfoContext(ctx, "keyword degraded", "keyword", "asthma")
	root.End()

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v (%q)", err, buf.String())
	}
	if rec["trace_id"] != root.TraceID() {
		t.Errorf("trace_id = %v, want %q", rec["trace_id"], root.TraceID())
	}
	if rec["msg"] != "keyword degraded" || rec["keyword"] != "asthma" {
		t.Errorf("record = %v", rec)
	}

	buf.Reset()
	log.InfoContext(context.Background(), "no trace")
	rec = nil
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if _, ok := rec["trace_id"]; ok {
		t.Error("trace_id present without an active trace")
	}
}

func TestDefaultLogger(t *testing.T) {
	if Default() == nil {
		t.Fatal("default logger nil")
	}
	var buf bytes.Buffer
	SetDefault(NewLogger(&buf, slog.LevelInfo))
	defer SetDefault(nil)
	Default().Info("hello")
	if buf.Len() == 0 {
		t.Fatal("default logger did not write")
	}
	SetDefault(nil)
	if Default() == nil {
		t.Fatal("nil SetDefault should restore discard logger")
	}
}

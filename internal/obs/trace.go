// Package obs is the zero-dependency observability layer: an
// in-process span tracer with context propagation, a typed metrics
// registry with Prometheus-style text exposition, structured JSON
// logging with per-request trace correlation, and net/http/pprof
// wiring. Every instrument is safe for concurrent use and cheap enough
// for the search hot path; the tracer's no-span fast path is a nil
// check, so deep packages (dil, ontoscore, query) instrument
// unconditionally.
//
// Span model: a request gets one trace (root span) whose ID travels in
// the context; child spans attach to whatever span the context
// carries. Completed root spans land in a bounded ring buffer that
// /debug/traces exposes, and an in-flight tree can be snapshotted at
// any time (unfinished spans report their duration so far), which is
// how /search?debug=trace returns the tree of the request that is
// still writing its own response.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCapacity bounds the ring of retained completed traces.
const DefaultTraceCapacity = 64

// Tracer issues trace IDs and retains a ring buffer of recently
// completed root spans.
type Tracer struct {
	capacity int

	mu     sync.Mutex
	recent []*Span // ring, oldest first once full
	next   int
	total  uint64
}

// NewTracer returns a tracer retaining up to capacity completed traces
// (<= 0 uses DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{capacity: capacity, recent: make([]*Span, 0, capacity)}
}

// Span is one timed operation within a trace. All methods are nil-safe:
// code instrumented with StartSpan runs unchanged (and nearly free)
// when no trace is active in the context.
type Span struct {
	tracer  *Tracer
	root    *Span
	traceID string
	id      uint64 // unique within the trace
	name    string
	start   time.Time

	seq atomic.Uint64 // root only: next child span ID

	mu       sync.Mutex
	end      time.Time
	attrs    []Attr
	children []*Span
}

// Attr is one span attribute.
type Attr struct {
	Key   string
	Value any
}

type spanCtxKey struct{}

// newTraceID returns a 64-bit random hex trace identifier.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is effectively impossible on supported
		// platforms; fall back to the clock rather than panicking the
		// request path.
		binary.BigEndian.PutUint64(b[:], uint64(time.Now().UnixNano()))
	}
	const hex = "0123456789abcdef"
	out := make([]byte, 16)
	for i, v := range b {
		out[2*i] = hex[v>>4]
		out[2*i+1] = hex[v&0x0f]
	}
	return string(out)
}

// StartRoot begins a new trace: a fresh trace ID and a root span,
// stored in the returned context. End() on the root publishes the
// trace into the ring buffer.
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{
		tracer:  t,
		traceID: newTraceID(),
		id:      0,
		name:    name,
		start:   time.Now(),
	}
	s.root = s
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// StartSpan begins a child of the span carried by ctx. When ctx holds
// no span, it returns (ctx, nil) and every method on the nil span is a
// no-op — instrumented code needs no conditionals.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	root := parent.root
	s := &Span{
		tracer:  parent.tracer,
		root:    root,
		traceID: parent.traceID,
		id:      root.seq.Add(1),
		name:    name,
		start:   time.Now(),
	}
	parent.mu.Lock()
	parent.children = append(parent.children, s)
	parent.mu.Unlock()
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// TraceID returns the trace identifier carried by ctx ("" when no
// trace is active).
func TraceID(ctx context.Context) string {
	if s := SpanFromContext(ctx); s != nil {
		return s.traceID
	}
	return ""
}

// TraceID returns the span's trace identifier.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// Root returns the root span of this span's trace.
func (s *Span) Root() *Span {
	if s == nil {
		return nil
	}
	return s.root
}

// SetAttr records one attribute (last write wins on duplicate keys at
// render time). Nil-safe.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End marks the span finished. Ending the root span publishes the
// completed trace into the tracer's ring buffer. Nil-safe; repeated
// End keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	first := s.end.IsZero()
	if first {
		s.end = time.Now()
	}
	s.mu.Unlock()
	if first && s == s.root && s.tracer != nil {
		s.tracer.publish(s)
	}
}

func (t *Tracer) publish(root *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.recent) < t.capacity {
		t.recent = append(t.recent, root)
		t.next = len(t.recent) % t.capacity
		return
	}
	t.recent[t.next] = root
	t.next = (t.next + 1) % t.capacity
}

// Completed reports how many traces have finished since the tracer was
// created (including those evicted from the ring).
func (t *Tracer) Completed() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Recent returns the retained completed traces, oldest first.
func (t *Tracer) Recent() []SpanTree {
	t.mu.Lock()
	roots := make([]*Span, 0, len(t.recent))
	// Ring order: next..end is the older half once the ring has wrapped.
	if len(t.recent) == t.capacity {
		roots = append(roots, t.recent[t.next:]...)
		roots = append(roots, t.recent[:t.next]...)
	} else {
		roots = append(roots, t.recent...)
	}
	t.mu.Unlock()
	out := make([]SpanTree, 0, len(roots))
	for _, r := range roots {
		out = append(out, r.Tree())
	}
	return out
}

// Handler serves the retained traces as JSON (newest last); mount it
// at /debug/traces.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(struct {
			Completed uint64     `json:"completed"`
			Traces    []SpanTree `json:"traces"`
		}{t.Completed(), t.Recent()})
	})
}

// SpanTree is the JSON rendering of a span and its descendants.
type SpanTree struct {
	TraceID    string         `json:"trace_id,omitempty"` // root only
	SpanID     uint64         `json:"span_id"`
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationUS int64          `json:"duration_us"`
	InFlight   bool           `json:"in_flight,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanTree     `json:"children,omitempty"`
}

// Tree snapshots the span and its descendants. Unfinished spans report
// the duration elapsed so far and are flagged in_flight, so a request
// can render its own partial trace while still being served. Durations
// are reported in microseconds with a floor of 1, so sub-microsecond
// spans still render as non-zero.
func (s *Span) Tree() SpanTree {
	if s == nil {
		return SpanTree{}
	}
	now := time.Now()
	return s.tree(now)
}

func (s *Span) tree(now time.Time) SpanTree {
	s.mu.Lock()
	end := s.end
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	n := SpanTree{
		SpanID: s.id,
		Name:   s.name,
		Start:  s.start,
	}
	if s == s.root {
		n.TraceID = s.traceID
	}
	if end.IsZero() {
		n.InFlight = true
		end = now
	}
	us := end.Sub(s.start).Microseconds()
	if us < 1 {
		us = 1
	}
	n.DurationUS = us
	if len(attrs) > 0 {
		n.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			n.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range children {
		n.Children = append(n.Children, c.tree(now))
	}
	return n
}

// Find returns the first span tree node with the given name in a
// depth-first walk of the tree (nil when absent). Helper for tests and
// tools asserting the shape of a trace.
func (n *SpanTree) Find(name string) *SpanTree {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for i := range n.Children {
		if f := n.Children[i].Find(name); f != nil {
			return f
		}
	}
	return nil
}

package obs

import (
	"context"
	"io"
	"log/slog"
	"sync/atomic"
)

// traceHandler decorates a slog.Handler with the trace ID carried by
// the record's context, correlating every log line with the request
// trace that emitted it.
type traceHandler struct{ inner slog.Handler }

func (h traceHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h traceHandler) Handle(ctx context.Context, rec slog.Record) error {
	if id := TraceID(ctx); id != "" {
		rec.AddAttrs(slog.String("trace_id", id))
	}
	return h.inner.Handle(ctx, rec)
}

func (h traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return traceHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h traceHandler) WithGroup(name string) slog.Handler {
	return traceHandler{inner: h.inner.WithGroup(name)}
}

// NewLogger returns a structured JSON logger writing to w at the given
// level. Records logged through the *Context methods carry a trace_id
// attribute when their context holds an active trace.
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(traceHandler{inner: slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})})
}

// NewDiscardLogger returns a logger that drops everything (tests,
// library defaults).
func NewDiscardLogger() *slog.Logger {
	return slog.New(traceHandler{inner: slog.NewJSONHandler(io.Discard, nil)})
}

// defaultLogger is the process-wide fallback used by packages that are
// not handed an explicit logger (e.g. the core facade's legacy Search
// shim reporting an error the caller's signature cannot surface). It
// starts as a discard logger so libraries stay silent until the command
// layer opts in via SetDefault.
var defaultLogger atomic.Pointer[slog.Logger]

func init() { defaultLogger.Store(NewDiscardLogger()) }

// Default returns the process-wide obs logger.
func Default() *slog.Logger { return defaultLogger.Load() }

// SetDefault installs the process-wide obs logger (nil restores the
// discard logger).
func SetDefault(l *slog.Logger) {
	if l == nil {
		l = NewDiscardLogger()
	}
	defaultLogger.Store(l)
}

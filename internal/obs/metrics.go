package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named instruments and renders them in the Prometheus
// text exposition format. Instruments are identified by (name, label
// set); registering the same identity twice returns the existing
// instrument, so packages can idempotently grab their counters.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration order of family names
}

type family struct {
	name, help, typ string
	order           []string // series keys in registration order
	series          map[string]*series
}

type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// Label is one metric label pair.
type Label struct{ Key, Value string }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, 0, len(labels))
	for _, l := range labels {
		parts = append(parts, l.Key+"\x1f"+l.Value)
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x1e")
}

func (r *Registry) family(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
		r.names = append(r.names, name)
	}
	return f
}

func (f *family) get(labels []Label) (*series, bool) {
	k := labelKey(labels)
	s, ok := f.series[k]
	if !ok {
		s = &series{labels: append([]Label(nil), labels...)}
		f.series[k] = s
		f.order = append(f.order, k)
	}
	return s, ok
}

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by d (negative deltas are ignored —
// counters only go up).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// DefBuckets are latency-oriented default bucket bounds, in seconds.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.buckets) {
		h.buckets[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.family(name, help, "counter").get(labels)
	if !ok {
		s.counter = &Counter{}
	}
	return s.counter
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge for components that already keep their
// own atomic counters.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.family(name, help, "counter").get(labels)
	s.fn = fn
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.family(name, help, "gauge").get(labels)
	if !ok {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.family(name, help, "gauge").get(labels)
	s.fn = fn
}

// Histogram registers (or fetches) a histogram with the given upper
// bucket bounds (nil uses DefBuckets). Bounds must be ascending.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.family(name, help, "histogram").get(labels)
	if !ok {
		s.hist = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)),
		}
	}
	return s.hist
}

func formatLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, 0, len(all))
	for _, l := range all {
		parts = append(parts, fmt.Sprintf("%s=%q", l.Key, l.Value))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered instrument in the
// Prometheus text exposition format, families in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, 0, len(names))
	type snap struct {
		labels []Label
		typ    string
		val    float64
		hist   *Histogram
	}
	snaps := make([][]snap, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		fams = append(fams, f)
		rows := make([]snap, 0, len(f.order))
		for _, k := range f.order {
			s := f.series[k]
			row := snap{labels: s.labels, typ: f.typ}
			switch {
			case s.hist != nil:
				row.hist = s.hist
			case s.fn != nil:
				row.val = s.fn()
			case s.counter != nil:
				row.val = float64(s.counter.Value())
			case s.gauge != nil:
				row.val = s.gauge.Value()
			}
			rows = append(rows, row)
		}
		snaps = append(snaps, rows)
	}
	r.mu.Unlock()

	for i, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, row := range snaps[i] {
			if row.hist == nil {
				fmt.Fprintf(w, "%s%s %s\n", f.name, formatLabels(row.labels), formatValue(row.val))
				continue
			}
			h := row.hist
			cum := int64(0)
			for bi, bound := range h.bounds {
				cum += h.buckets[bi].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					formatLabels(row.labels, Label{"le", strconv.FormatFloat(bound, 'g', -1, 64)}), cum)
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				formatLabels(row.labels, Label{"le", "+Inf"}), h.Count())
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, formatLabels(row.labels), formatValue(h.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, formatLabels(row.labels), h.Count())
		}
	}
}

// Handler serves the exposition; mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

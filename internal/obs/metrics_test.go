package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("xonto_requests_total", "Total requests.")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters only go up
	g := r.Gauge("xonto_inflight", "In-flight requests.")
	g.Set(3)
	g.Add(-1)
	r.CounterFunc("xonto_evictions_total", "Evictions.", func() float64 { return 7 },
		Label{"cache", "result"})

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP xonto_requests_total Total requests.",
		"# TYPE xonto_requests_total counter",
		"xonto_requests_total 3",
		"# TYPE xonto_inflight gauge",
		"xonto_inflight 2",
		`xonto_evictions_total{cache="result"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("xonto_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE xonto_latency_seconds histogram",
		`xonto_latency_seconds_bucket{le="0.01"} 1`,
		`xonto_latency_seconds_bucket{le="0.1"} 3`,
		`xonto_latency_seconds_bucket{le="1"} 4`,
		`xonto_latency_seconds_bucket{le="+Inf"} 5`,
		"xonto_latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Sum(); got < 5.6 || got > 5.7 {
		t.Errorf("sum = %v", got)
	}
}

func TestRegistryIdempotentAndConcurrent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "c")
	b := r.Counter("c_total", "c")
	if a != b {
		t.Fatal("same identity returned distinct counters")
	}
	l1 := r.Counter("c_total", "c", Label{"k", "1"})
	if l1 == a {
		t.Fatal("labeled series must be distinct")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total", "c").Inc()
				r.Histogram("h_seconds", "h", nil).Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if got := a.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h_seconds", "h", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

package obs

import (
	"net/http"
	"net/http/pprof"
)

// RegisterPprof mounts the net/http/pprof handlers under /debug/pprof/
// on mux. It is explicit (no import-time side effects on
// http.DefaultServeMux) so the server only exposes profiling when the
// admin flag asks for it.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeShape(t *testing.T) {
	tr := NewTracer(4)
	ctx, root := tr.StartRoot(context.Background(), "http.request")
	root.SetAttr("path", "/search")

	ctx2, child := StartSpan(ctx, "serving.search")
	child.SetAttr("cache", "miss")
	_, grand := StartSpan(ctx2, "query.search")
	time.Sleep(time.Millisecond)
	grand.End()
	child.End()
	root.End()

	tree := root.Tree()
	if tree.TraceID == "" || len(tree.TraceID) != 16 {
		t.Fatalf("trace id = %q", tree.TraceID)
	}
	if tree.Name != "http.request" || tree.Attrs["path"] != "/search" {
		t.Fatalf("root = %+v", tree)
	}
	q := tree.Find("query.search")
	if q == nil {
		t.Fatal("query.search span missing")
	}
	if q.DurationUS <= 0 {
		t.Errorf("duration = %d, want > 0", q.DurationUS)
	}
	if got := tree.Find("serving.search"); got == nil || got.Attrs["cache"] != "miss" {
		t.Errorf("serving.search = %+v", got)
	}
	if tr.Completed() != 1 {
		t.Errorf("completed = %d", tr.Completed())
	}
}

func TestStartSpanWithoutTraceIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "anything")
	if s != nil {
		t.Fatal("expected nil span")
	}
	if ctx2 != ctx {
		t.Fatal("context should pass through unchanged")
	}
	// All methods must be nil-safe.
	s.SetAttr("k", "v")
	s.End()
	if s.Tree().Name != "" || s.TraceID() != "" || s.Root() != nil {
		t.Fatal("nil span methods not inert")
	}
	if TraceID(ctx) != "" {
		t.Fatal("trace id without trace")
	}
}

func TestInFlightSnapshot(t *testing.T) {
	tr := NewTracer(4)
	ctx, root := tr.StartRoot(context.Background(), "root")
	_, child := StartSpan(ctx, "child")
	_ = child
	time.Sleep(time.Millisecond)
	tree := root.Tree() // nothing ended yet
	if !tree.InFlight || tree.DurationUS <= 0 {
		t.Fatalf("root snapshot = %+v", tree)
	}
	if len(tree.Children) != 1 || !tree.Children[0].InFlight {
		t.Fatalf("children = %+v", tree.Children)
	}
}

// Concurrent spans within one trace and across traces must never share
// (trace, span) identity. Run under -race this also checks the tree
// bookkeeping for data races.
func TestConcurrentSpanIDsUnique(t *testing.T) {
	tr := NewTracer(8)
	const traces, spansPer = 8, 50
	type id struct {
		trace string
		span  uint64
	}
	var mu sync.Mutex
	seen := make(map[id]bool)
	var wg sync.WaitGroup
	for i := 0; i < traces; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, root := tr.StartRoot(context.Background(), "root")
			var inner sync.WaitGroup
			ids := make([]uint64, spansPer)
			for j := 0; j < spansPer; j++ {
				inner.Add(1)
				go func(j int) {
					defer inner.Done()
					_, s := StartSpan(ctx, "child")
					ids[j] = s.id
					s.End()
				}(j)
			}
			inner.Wait()
			root.End()
			mu.Lock()
			defer mu.Unlock()
			for _, sid := range ids {
				k := id{root.TraceID(), sid}
				if seen[k] {
					t.Errorf("duplicate span identity %+v", k)
				}
				seen[k] = true
			}
		}()
	}
	wg.Wait()
	if len(seen) != traces*spansPer {
		t.Fatalf("unique ids = %d, want %d", len(seen), traces*spansPer)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		_, root := tr.StartRoot(context.Background(), "r")
		root.End()
	}
	if got := len(tr.Recent()); got != 2 {
		t.Fatalf("recent = %d, want 2", got)
	}
	if tr.Completed() != 5 {
		t.Fatalf("completed = %d, want 5", tr.Completed())
	}
}

func TestTraceHandler(t *testing.T) {
	tr := NewTracer(4)
	ctx, root := tr.StartRoot(context.Background(), "req")
	_, c := StartSpan(ctx, "work")
	c.End()
	root.End()

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var payload struct {
		Completed uint64     `json:"completed"`
		Traces    []SpanTree `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Completed != 1 || len(payload.Traces) != 1 {
		t.Fatalf("payload = %+v", payload)
	}
	if payload.Traces[0].Find("work") == nil {
		t.Fatal("child span missing from handler output")
	}
}

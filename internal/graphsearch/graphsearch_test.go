package graphsearch

import (
	"math"
	"testing"

	"repro/internal/cda"
	"repro/internal/dil"
	"repro/internal/ontology"
	"repro/internal/ontoscore"
	"repro/internal/query"
	"repro/internal/xmltree"
)

func fixture(t *testing.T, strategy ontoscore.Strategy) (*Engine, *xmltree.Corpus) {
	t.Helper()
	ont := ontology.Figure2Fragment()
	corpus := xmltree.NewCorpus()
	doc, err := cda.GenerateFigure1(ont)
	if err != nil {
		t.Fatal(err)
	}
	corpus.Add(doc)
	b := dil.NewBuilder(corpus, ont, strategy, dil.DefaultParams())
	return NewEngine(corpus, b, DefaultParams()), corpus
}

func TestReferenceEdgesExtracted(t *testing.T) {
	e, _ := fixture(t, ontoscore.StrategyNone)
	if e.NumReferenceEdges() == 0 {
		t.Fatal("figure-1 corpus has no reference edges")
	}
}

func TestGraphSearchCoversKeywords(t *testing.T) {
	e, corpus := fixture(t, ontoscore.StrategyNone)
	kws := query.ParseQuery("asthma theophylline")
	res := e.Search(kws, 5)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	for _, r := range res {
		if corpus.NodeAt(r.Center) == nil {
			t.Fatalf("center %v unresolvable", r.Center)
		}
		if len(r.Matches) != len(kws) {
			t.Fatalf("matches = %d", len(r.Matches))
		}
		total := 0.0
		for i, pk := range r.PerKeyword {
			if pk <= 0 {
				t.Errorf("keyword %d contribution %f", i, pk)
			}
			total += pk
			// Contribution equals NS decayed by the match distance.
			want := r.Matches[i].Score * math.Pow(0.5, float64(r.Matches[i].Distance))
			if math.Abs(pk-want) > 1e-9 {
				t.Errorf("keyword %d: contribution %f != ns*decay^d %f", i, pk, want)
			}
		}
		if math.Abs(total-r.Score) > 1e-9 {
			t.Errorf("score %f != sum %f", r.Score, total)
		}
	}
	// Ranked descending with Dewey tie-break.
	for i := 1; i < len(res); i++ {
		if res[i-1].Score < res[i].Score {
			t.Fatal("not sorted")
		}
		if res[i-1].Score == res[i].Score && res[i-1].Center.Compare(res[i].Center) >= 0 {
			t.Fatal("tie-break unstable")
		}
	}
}

// The reference edge (asthma value -> theophylline content anchor)
// shortens the connection between "asthma" and "theophylline" relative
// to pure containment: the asthma value node and the content anchor sit
// in different sections (tree distance through the StructuredBody is
// large), but one hyperlink edge apart.
func TestReferenceEdgeShortensConnection(t *testing.T) {
	e, corpus := fixture(t, ontoscore.StrategyNone)
	kws := query.ParseQuery("asthma theophylline")
	res := e.Search(kws, 1)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	top := res[0]
	// The best center must connect the two keywords within a couple of
	// hops — impossible on the pure tree, where the LCA is the section
	// (>= 3 containment edges from the asthma value node).
	dTotal := top.Matches[0].Distance + top.Matches[1].Distance
	if dTotal > 3 {
		t.Errorf("best center needs %d hops; reference edge not exploited", dTotal)
	}

	// Compare with the tree engine: its most specific cover is higher
	// up (the section or document), hence lower-scored.
	b := dil.NewBuilder(corpus, ontology.Figure2Fragment(), ontoscore.StrategyNone, dil.DefaultParams())
	treeEngine := query.NewEngine(dil.NewIndex(), b, query.DefaultParams())
	treeRes := treeEngine.Search(kws, 1)
	if len(treeRes) == 0 {
		t.Fatal("tree engine found nothing")
	}
	if top.Score <= treeRes[0].Score {
		t.Errorf("graph score %f not above tree score %f despite shortcut", top.Score, treeRes[0].Score)
	}
}

func TestGraphSearchOntologicalKeywords(t *testing.T) {
	// The graph engine consumes the same XOnto-DILs, so ontological
	// matches work: the intro query has results under Relationships and
	// none under the baseline.
	baseline, _ := fixture(t, ontoscore.StrategyNone)
	if res := baseline.SearchQuery(`"bronchial structure" theophylline`, 3); len(res) != 0 {
		t.Fatalf("baseline found %d results", len(res))
	}
	rel, _ := fixture(t, ontoscore.StrategyRelationships)
	if res := rel.SearchQuery(`"bronchial structure" theophylline`, 3); len(res) == 0 {
		t.Fatal("Relationships found nothing")
	}
}

func TestGraphSearchConjunctiveAndEmpty(t *testing.T) {
	e, _ := fixture(t, ontoscore.StrategyNone)
	if res := e.Search(nil, 5); res != nil {
		t.Error("empty query answered")
	}
	if res := e.SearchQuery("zzznothing theophylline", 5); len(res) != 0 {
		t.Error("unknown keyword should defeat the query")
	}
}

func TestMaxRadiusBounds(t *testing.T) {
	ont := ontology.Figure2Fragment()
	corpus := xmltree.NewCorpus()
	doc, err := cda.GenerateFigure1(ont)
	if err != nil {
		t.Fatal(err)
	}
	corpus.Add(doc)
	b := dil.NewBuilder(corpus, ont, ontoscore.StrategyNone, dil.DefaultParams())
	tight := NewEngine(corpus, b, Params{Decay: 0.5, MaxRadius: 1, K: 10})
	wide := NewEngine(corpus, b, Params{Decay: 0.5, MaxRadius: 12, K: 10})
	kws := query.ParseQuery("asthma theophylline")
	rt := tight.Search(kws, 100)
	rw := wide.Search(kws, 100)
	if len(rt) >= len(rw) {
		t.Errorf("radius 1 found %d centers, radius 12 found %d", len(rt), len(rw))
	}
	for _, r := range rt {
		for _, m := range r.Matches {
			if m.Distance > 1 {
				t.Errorf("match at distance %d with radius 1", m.Distance)
			}
		}
	}
}

// Package graphsearch extends XOntoRank's tree semantics to the XML
// graph. The paper's Section III restricts the algorithms to trees but
// notes the techniques "are straightforwardly applicable to graph
// search algorithms as well (i.e. when ID-IDREF edges are considered
// [XKeyword])" — CDA documents do carry such edges (originalText
// references). This package implements that extension:
//
//   - the data graph is the element tree plus undirected hyperlink
//     edges extracted from ID-IDREF references;
//   - keyword associations (node scores) come from the same XOnto-DILs
//     as the tree engine, so ontological matches participate;
//   - a result is a *center* element connecting all keywords, scored by
//     the natural generalization of equations (2)-(4): for each keyword
//     the best NS(v, w) * decay^dist(center, v) over the graph distance
//     (containment and hyperlink edges both count one step), summed
//     across keywords.
//
// On a corpus without reference edges the graph distances reduce to
// tree distances and the scores agree with the tree engine's (centers
// generalize the most-specific-element results; the top-ranked center
// is the tree result's root or a node on its spine).
package graphsearch

import (
	"container/heap"
	"sort"

	"repro/internal/dil"
	"repro/internal/elemrank"
	"repro/internal/query"
	"repro/internal/xmltree"
)

// Params configure the graph search.
type Params struct {
	// Decay attenuates scores per graph edge (paper equation (2)).
	Decay float64
	// MaxRadius bounds the multi-source BFS from keyword matches; nodes
	// farther than this from every match of some keyword cannot be
	// centers. It also bounds work on large documents.
	MaxRadius int
	// K is the default result count.
	K int
}

// DefaultParams mirrors the tree engine (decay 0.5) with radius 12.
func DefaultParams() Params { return Params{Decay: 0.5, MaxRadius: 12, K: 10} }

// Engine runs graph searches over one corpus.
type Engine struct {
	params Params
	corpus *xmltree.Corpus
	source query.KeywordBuilder // supplies XOnto-DILs (typically *dil.Builder)

	// refs holds the hyperlink adjacency (both directions) per node.
	refs map[*xmltree.Node][]*xmltree.Node
}

// NewEngine extracts the corpus's reference edges and prepares the
// engine. source supplies per-keyword posting lists (ontological and
// textual node scores).
func NewEngine(corpus *xmltree.Corpus, source query.KeywordBuilder, params Params) *Engine {
	e := &Engine{
		params: params,
		corpus: corpus,
		source: source,
		refs:   make(map[*xmltree.Node][]*xmltree.Node),
	}
	for _, doc := range corpus.Docs() {
		for _, edge := range elemrank.ExtractHyperlinks(doc) {
			e.refs[edge.From] = append(e.refs[edge.From], edge.To)
			e.refs[edge.To] = append(e.refs[edge.To], edge.From)
		}
	}
	return e
}

// NumReferenceEdges reports how many undirected hyperlink edges the
// corpus contributed.
func (e *Engine) NumReferenceEdges() int {
	n := 0
	for _, targets := range e.refs {
		n += len(targets)
	}
	return n / 2
}

// neighbors enumerates the graph adjacency of a node: parent, children,
// and hyperlink partners.
func (e *Engine) neighbors(n *xmltree.Node) []*xmltree.Node {
	out := make([]*xmltree.Node, 0, 1+len(n.Children)+len(e.refs[n]))
	if n.Parent != nil {
		out = append(out, n.Parent)
	}
	out = append(out, n.Children...)
	out = append(out, e.refs[n]...)
	return out
}

// Result is one graph-search answer.
type Result struct {
	// Center is the connecting element.
	Center xmltree.Dewey
	// Score sums the per-keyword decayed maxima (equation (4) over
	// graph distance).
	Score float64
	// PerKeyword holds each keyword's contribution at the center.
	PerKeyword []float64
	// Matches identifies each keyword's best supporting node and its
	// graph distance from the center.
	Matches []Match
}

// Match is one keyword's supporting node.
type Match struct {
	ID       xmltree.Dewey
	Score    float64 // NS at the node
	Distance int     // graph distance to the center
}

type arrival struct {
	score float64 // decayed score at this node
	src   xmltree.Dewey
	ns    float64
	dist  int
}

// Search answers a keyword query, returning up to k centers ranked by
// score (Dewey tie-break). Centers that lie on a strictly better
// center's match paths are not suppressed — callers wanting one answer
// take the top result.
func (e *Engine) Search(keywords []query.Keyword, k int) []Result {
	if len(keywords) == 0 {
		return nil
	}
	if k <= 0 {
		k = e.params.K
	}
	// Per keyword: multi-source decayed BFS from every posting node.
	perKeyword := make([]map[*xmltree.Node]arrival, len(keywords))
	for i, kw := range keywords {
		list := e.source.BuildKeyword(string(kw))
		if len(list) == 0 {
			return nil
		}
		perKeyword[i] = e.spread(list)
	}
	// Centers: nodes reached by every keyword.
	var results []Result
	for n, a0 := range perKeyword[0] {
		total := a0.score
		perKw := make([]float64, len(keywords))
		matches := make([]Match, len(keywords))
		perKw[0] = a0.score
		matches[0] = Match{ID: a0.src, Score: a0.ns, Distance: a0.dist}
		covered := true
		for i := 1; i < len(keywords); i++ {
			a, ok := perKeyword[i][n]
			if !ok {
				covered = false
				break
			}
			perKw[i] = a.score
			matches[i] = Match{ID: a.src, Score: a.ns, Distance: a.dist}
			total += a.score
		}
		if !covered {
			continue
		}
		results = append(results, Result{
			Center:     n.ID.Clone(),
			Score:      total,
			PerKeyword: perKw,
			Matches:    matches,
		})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].Center.Compare(results[j].Center) < 0
	})
	if len(results) > k {
		results = results[:k]
	}
	return results
}

// SearchQuery parses and answers a query string.
func (e *Engine) SearchQuery(q string, k int) []Result {
	return e.Search(query.ParseQuery(q), k)
}

type spreadItem struct {
	node *xmltree.Node
	arr  arrival
}

type spreadHeap []spreadItem

func (h spreadHeap) Len() int           { return len(h) }
func (h spreadHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h spreadHeap) Less(i, j int) bool { return h[i].arr.score > h[j].arr.score }
func (h *spreadHeap) Push(x any)        { *h = append(*h, x.(spreadItem)) }
func (h *spreadHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// spread runs a decayed multi-source best-first expansion: every node
// within MaxRadius of a posting ends up with its best arrival (max
// decayed score — Observation 1's merge rule generalized to the graph).
// A max-heap on score finalizes each node at its true maximum because
// every edge multiplies the score by decay <= 1.
func (e *Engine) spread(list dil.List) map[*xmltree.Node]arrival {
	best := make(map[*xmltree.Node]arrival)
	h := make(spreadHeap, 0, len(list))
	for _, p := range list {
		n := e.corpus.NodeAt(p.ID)
		if n == nil {
			continue
		}
		h = append(h, spreadItem{node: n, arr: arrival{score: p.Score, src: p.ID, ns: p.Score, dist: 0}})
	}
	heap.Init(&h)
	for h.Len() > 0 {
		it := heap.Pop(&h).(spreadItem)
		if _, done := best[it.node]; done {
			continue
		}
		best[it.node] = it.arr
		if it.arr.dist >= e.params.MaxRadius {
			continue
		}
		nextScore := it.arr.score * e.params.Decay
		if nextScore <= 0 {
			continue
		}
		for _, nb := range e.neighbors(it.node) {
			if _, done := best[nb]; done {
				continue
			}
			heap.Push(&h, spreadItem{node: nb, arr: arrival{
				score: nextScore, src: it.arr.src, ns: it.arr.ns, dist: it.arr.dist + 1,
			}})
		}
	}
	return best
}
